//! Undirected simple graph over hosts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a host in the network.
///
/// The paper uses `h` for both the host identity and its attribute value
/// (§3, footnote 2); here `HostId` is only the identity — attribute values
/// live in the workload layer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl HostId {
    /// The id as a `usize` index, for array-backed host tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

/// An undirected simple graph `G = (H, E)` (§3.1), stored in
/// **compressed sparse row** (CSR) form.
///
/// Hosts are identified by dense ids `0..n`. All adjacency lists live in
/// one contiguous `targets` arena; `offsets[h]..offsets[h + 1]` indexes
/// host `h`'s slice of it. Compared to the former `Vec<Vec<HostId>>`
/// layout this is one allocation instead of `n + 1`, neighbour walks are
/// cache-linear across hosts (BFS, flood fan-out), and cloning a graph —
/// or refusing to, see `pov_sim::SimBuilder::over` — is two `memcpy`s.
///
/// Lists are kept sorted and deduplicated so iteration order (and
/// therefore every simulation built on top) is deterministic.
#[derive(Clone, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[h]..offsets[h + 1]` bounds host `h`'s slice of
    /// `targets`; length `n + 1`, `offsets[0] == 0`, non-decreasing.
    offsets: Vec<u32>,
    /// Concatenated neighbour lists, each sorted ascending.
    targets: Vec<HostId>,
    num_edges: usize,
}

impl Graph {
    /// An empty graph with `n` isolated hosts.
    pub fn with_hosts(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            num_edges: 0,
        }
    }

    /// Number of hosts `|H|`.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Average degree `2|E| / |H|`.
    pub fn average_degree(&self) -> f64 {
        if self.num_hosts() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / self.num_hosts() as f64
    }

    /// Neighbours `N(h)` of a host, sorted ascending — a borrow of the
    /// CSR arena, so engines and protocols can hold the slice without
    /// copying the list (the hot-path accessor: every send, broadcast
    /// and BFS expansion goes through here).
    #[inline]
    pub fn neighbors(&self, h: HostId) -> &[HostId] {
        &self.targets[self.offsets[h.index()] as usize..self.offsets[h.index() + 1] as usize]
    }

    /// Degree of a host.
    #[inline]
    pub fn degree(&self, h: HostId) -> usize {
        (self.offsets[h.index() + 1] - self.offsets[h.index()]) as usize
    }

    /// Whether `(a, b)` is an edge. `O(log deg(a))`.
    pub fn has_edge(&self, a: HostId, b: HostId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all hosts.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.num_hosts() as u32).map(HostId)
    }

    /// Iterator over all undirected edges, each reported once with
    /// `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (HostId, HostId)> + '_ {
        self.hosts().flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Degree histogram: `hist[d]` = number of hosts with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max_deg = self.hosts().map(|h| self.degree(h)).max().unwrap_or(0);
        let mut hist = vec![0usize; max_deg + 1];
        for h in self.hosts() {
            hist[self.degree(h)] += 1;
        }
        hist
    }

    /// Assemble a graph directly from CSR parts. The caller guarantees the
    /// invariants: `offsets` has length `n + 1`, is non-decreasing, starts
    /// at 0; each host's `targets` slice is sorted, deduplicated and
    /// symmetric. Used by [`crate::analysis::connect_components`] to patch
    /// a graph without round-tripping through a [`GraphBuilder`].
    pub(crate) fn from_csr(offsets: Vec<u32>, targets: Vec<HostId>, num_edges: usize) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert_eq!(targets.len(), 2 * num_edges);
        Graph {
            offsets,
            targets,
            num_edges,
        }
    }

    /// The raw CSR parts, for byte-level comparisons in tests.
    #[cfg(test)]
    pub(crate) fn csr_parts(&self) -> (&[u32], &[HostId]) {
        (&self.offsets, &self.targets)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("hosts", &self.num_hosts())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// Anything that can receive a stream of undirected edges.
///
/// Topology generators emit edges through this trait, which lets the
/// same generator body feed either the materialized [`GraphBuilder`]
/// (kept as the test oracle) or the flat [`StreamingBuilder`] used in
/// production. Implementations must treat `add_edge(a, b)` and
/// `add_edge(b, a)` as the same edge and ignore self-loops.
pub trait EdgeSink {
    /// Add the undirected edge `(a, b)`. Self-loops are ignored;
    /// duplicates are deduplicated at build time.
    fn add_edge(&mut self, a: HostId, b: HostId);
}

/// Incremental builder for [`Graph`]; tolerates duplicate edge insertions
/// and self-loops (both ignored), which keeps random generators simple.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    adjacency: Vec<Vec<HostId>>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` hosts.
    pub fn with_hosts(n: usize) -> Self {
        GraphBuilder {
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.adjacency.len()
    }

    /// Add the undirected edge `(a, b)`. Self-loops are ignored.
    pub fn add_edge(&mut self, a: HostId, b: HostId) {
        if a == b {
            return;
        }
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
    }

    /// Current degree of `h` counting duplicates (an upper bound on the
    /// final degree).
    pub fn raw_degree(&self, h: HostId) -> usize {
        self.adjacency[h.index()].len()
    }

    /// Finalize: sort adjacency lists, drop duplicate edges, and pack
    /// the lists into the CSR arena.
    pub fn build(mut self) -> Graph {
        let mut num_half_edges = 0;
        for nbrs in &mut self.adjacency {
            nbrs.sort_unstable();
            nbrs.dedup();
            num_half_edges += nbrs.len();
        }
        let mut offsets = Vec::with_capacity(self.adjacency.len() + 1);
        let mut targets = Vec::with_capacity(num_half_edges);
        offsets.push(0u32);
        for nbrs in &self.adjacency {
            targets.extend_from_slice(nbrs);
            offsets.push(targets.len() as u32);
        }
        Graph {
            offsets,
            targets,
            num_edges: num_half_edges / 2,
        }
    }
}

impl EdgeSink for GraphBuilder {
    fn add_edge(&mut self, a: HostId, b: HostId) {
        GraphBuilder::add_edge(self, a, b);
    }
}

/// Streaming CSR builder: collects each undirected edge as one packed
/// `u64` pair and counting-sorts the pairs straight into the CSR arena.
///
/// Unlike [`GraphBuilder`] there is no per-host `Vec` (no `n` separate
/// allocations, no pointer-chasing during build): peak memory is one flat
/// pair buffer (8 bytes per inserted edge) plus the final CSR arrays, i.e.
/// `O(edges)` regardless of how skewed the degree distribution is. This is
/// what makes topology generation at `n = 10⁶` fit the scaling budget —
/// see `docs/SCALING.md`.
///
/// Produces output byte-identical to `GraphBuilder::build` for the same
/// edge multiset (property-tested per generator in
/// `generators::tests::streaming_matches_materialized_oracle`).
#[derive(Clone, Debug)]
pub struct StreamingBuilder {
    num_hosts: usize,
    /// Canonicalized edges, packed `(min << 32) | max`. Sorting these
    /// lexicographically is exactly sorting by `(min, max)`.
    pairs: Vec<u64>,
}

impl StreamingBuilder {
    /// A streaming builder for a graph with `n` hosts.
    pub fn with_hosts(n: usize) -> Self {
        StreamingBuilder {
            num_hosts: n,
            pairs: Vec::new(),
        }
    }

    /// A streaming builder with capacity reserved for `edges` insertions
    /// (counting duplicates). Generators that know their edge budget pass
    /// it here so the pair buffer never reallocates mid-stream.
    pub fn with_edge_capacity(n: usize, edges: usize) -> Self {
        StreamingBuilder {
            num_hosts: n,
            pairs: Vec::with_capacity(edges),
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    /// Add the undirected edge `(a, b)`. Self-loops are ignored.
    pub fn add_edge(&mut self, a: HostId, b: HostId) {
        if a == b {
            return;
        }
        debug_assert!(a.index() < self.num_hosts && b.index() < self.num_hosts);
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.pairs.push(((lo as u64) << 32) | hi as u64);
    }

    /// Finalize: sort and deduplicate the pair buffer, then counting-sort
    /// it into the CSR arena.
    ///
    /// Filling in pair-sorted order leaves every neighbour list already
    /// sorted ascending: host `h` first receives its smaller neighbours
    /// `c < h` (from pairs `(c, h)`, which sort before any `(h, ·)` pair),
    /// each in ascending `c` order, then its larger neighbours from
    /// `(h, b)` pairs in ascending `b` order.
    pub fn build(mut self) -> Graph {
        self.pairs.sort_unstable();
        self.pairs.dedup();
        let n = self.num_hosts;
        let num_edges = self.pairs.len();
        assert!(
            num_edges <= (u32::MAX / 2) as usize,
            "edge count overflows u32 CSR offsets"
        );
        let mut offsets = vec![0u32; n + 1];
        for &p in &self.pairs {
            offsets[(p >> 32) as usize + 1] += 1;
            offsets[(p & 0xffff_ffff) as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // cursor[h] = next free slot in h's CSR slice.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![HostId(0); 2 * num_edges];
        for &p in &self.pairs {
            let a = (p >> 32) as u32;
            let b = (p & 0xffff_ffff) as u32;
            targets[cursor[a as usize] as usize] = HostId(b);
            cursor[a as usize] += 1;
            targets[cursor[b as usize] as usize] = HostId(a);
            cursor[b as usize] += 1;
        }
        Graph {
            offsets,
            targets,
            num_edges,
        }
    }
}

impl EdgeSink for StreamingBuilder {
    fn add_edge(&mut self, a: HostId, b: HostId) {
        StreamingBuilder::add_edge(self, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::with_hosts(3);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(1), HostId(2));
        b.add_edge(HostId(2), HostId(0));
        b.build()
    }

    #[test]
    fn counts_hosts_and_edges() {
        let g = triangle();
        assert_eq!(g.num_hosts(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_ignored() {
        let mut b = GraphBuilder::with_hosts(2);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(1), HostId(0));
        b.add_edge(HostId(0), HostId(0));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(HostId(0)), 1);
        assert_eq!(g.degree(HostId(1)), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::with_hosts(4);
        b.add_edge(HostId(0), HostId(3));
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(0), HostId(2));
        let g = b.build();
        assert_eq!(g.neighbors(HostId(0)), &[HostId(1), HostId(2), HostId(3)]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle();
        for (a, b) in g.edges() {
            assert!(g.has_edge(a, b));
            assert!(g.has_edge(b, a));
        }
        assert!(!g.has_edge(HostId(0), HostId(0)));
    }

    #[test]
    fn edges_reported_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn degree_histogram_sums_to_host_count() {
        let g = triangle();
        let hist = g.degree_histogram();
        assert_eq!(hist.iter().sum::<usize>(), g.num_hosts());
        assert_eq!(hist[2], 3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::with_hosts(0);
        assert_eq!(g.num_hosts(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn streaming_builder_matches_graph_builder() {
        // Same insertion stream — duplicates, both orientations, a
        // self-loop — must produce byte-identical CSR parts.
        let inserts = [(0u32, 3u32), (3, 0), (0, 1), (2, 1), (0, 2), (2, 2)];
        let mut gb = GraphBuilder::with_hosts(4);
        let mut sb = StreamingBuilder::with_edge_capacity(4, inserts.len());
        for &(a, b) in &inserts {
            gb.add_edge(HostId(a), HostId(b));
            sb.add_edge(HostId(a), HostId(b));
        }
        let g = gb.build();
        let s = sb.build();
        assert_eq!(g.csr_parts(), s.csr_parts());
        assert_eq!(g.num_edges(), s.num_edges());
    }

    #[test]
    fn streaming_builder_sorted_neighbors_and_isolated_hosts() {
        let mut sb = StreamingBuilder::with_hosts(5);
        sb.add_edge(HostId(4), HostId(1));
        sb.add_edge(HostId(1), HostId(0));
        sb.add_edge(HostId(1), HostId(3));
        let g = sb.build();
        assert_eq!(g.neighbors(HostId(1)), &[HostId(0), HostId(3), HostId(4)]);
        assert_eq!(g.degree(HostId(2)), 0);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn streaming_builder_empty() {
        let g = StreamingBuilder::with_hosts(0).build();
        assert_eq!(g.num_hosts(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn clone_preserves_structure() {
        let g = triangle();
        let c = g.clone();
        assert_eq!(c.num_hosts(), g.num_hosts());
        assert_eq!(c.num_edges(), g.num_edges());
        for h in g.hosts() {
            assert_eq!(c.neighbors(h), g.neighbors(h));
        }
    }
}
