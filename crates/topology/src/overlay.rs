//! A mutable overlay view over an immutable CSR [`Graph`].
//!
//! The CSR layout of [`Graph`] is the right shape for the engine's hot
//! path — one contiguous arena, slice-borrowed adjacency — but it is
//! frozen at build time. Overlay-maintenance protocols (HyParView-style
//! partial views, SWIM-style eviction) need edges that *evolve* during
//! a run. [`OverlayView`] provides that as a **delta layer**:
//!
//! * the **base** CSR graph stays untouched and shared;
//! * per-host **add/remove deltas** record how the overlay has diverged;
//! * [`OverlayView::neighbors`] serves the merged adjacency — hosts with
//!   no delta borrow the base CSR slice directly, touched hosts borrow a
//!   cached merged list that is updated in place on every mutation;
//! * [`OverlayView::compact`] periodically folds the deltas back into a
//!   fresh CSR base, bounding delta memory on long runs.
//!
//! Determinism: merged lists are kept sorted ascending (same contract as
//! [`Graph::neighbors`]), mutations are idempotent, and no iteration
//! order depends on hash state — the delta table is a dense per-host
//! vector, not a hash map.

use crate::{Graph, GraphBuilder, HostId};

/// Per-host divergence from the base CSR adjacency.
#[derive(Clone, Debug, Default)]
struct HostDelta {
    /// Neighbours present in the overlay but not in the base, sorted.
    added: Vec<HostId>,
    /// Base neighbours no longer present in the overlay, sorted.
    removed: Vec<HostId>,
    /// Cached merged adjacency (base − removed + added), sorted.
    merged: Vec<HostId>,
}

/// A mutable edge-set view layered over an immutable CSR [`Graph`].
///
/// See the module-level docs for the design. All mutators keep the
/// undirected-simple-graph invariants of [`Graph`]: edges are
/// symmetric, self-loops are rejected, duplicates are idempotent.
#[derive(Clone, Debug)]
pub struct OverlayView {
    base: Graph,
    /// `delta[h]` is `Some` iff host `h`'s adjacency has diverged.
    delta: Vec<Option<HostDelta>>,
    /// Hosts with a live delta (ascending insertion not required; reads
    /// never iterate this, only compaction statistics).
    touched: usize,
    num_edges: usize,
}

impl OverlayView {
    /// An overlay that initially mirrors `base` exactly.
    pub fn new(base: Graph) -> Self {
        let n = base.num_hosts();
        let num_edges = base.num_edges();
        OverlayView {
            base,
            delta: vec![None; n],
            touched: 0,
            num_edges,
        }
    }

    /// Number of hosts (fixed; the overlay mutates edges, not the host
    /// universe — aliveness lives in the engine).
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.base.num_hosts()
    }

    /// Number of undirected edges currently in the overlay.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The immutable base graph this view diverges from.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Current neighbours of `h`, sorted ascending. Hosts whose
    /// adjacency never diverged borrow the base CSR arena; touched
    /// hosts borrow their cached merged list. Either way this is the
    /// same `&[HostId]` contract as [`Graph::neighbors`].
    #[inline]
    pub fn neighbors(&self, h: HostId) -> &[HostId] {
        match &self.delta[h.index()] {
            Some(d) => &d.merged,
            None => self.base.neighbors(h),
        }
    }

    /// Current degree of `h`.
    #[inline]
    pub fn degree(&self, h: HostId) -> usize {
        self.neighbors(h).len()
    }

    /// Whether `(a, b)` is currently an overlay edge. `O(log deg(a))`.
    pub fn has_edge(&self, a: HostId, b: HostId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all hosts.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.base.hosts()
    }

    /// Iterator over all current undirected edges, each reported once
    /// with `a < b`, in ascending `(a, b)` order.
    pub fn edges(&self) -> impl Iterator<Item = (HostId, HostId)> + '_ {
        self.hosts().flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Number of hosts whose adjacency currently diverges from base.
    pub fn delta_hosts(&self) -> usize {
        self.touched
    }

    /// Total size of the add/remove delta, in directed half-edges.
    /// The compaction policy triggers on this figure.
    pub fn delta_len(&self) -> usize {
        self.delta
            .iter()
            .flatten()
            .map(|d| d.added.len() + d.removed.len())
            .sum()
    }

    /// Edges added relative to base, each once with `a < b`, ascending.
    pub fn added_edges(&self) -> Vec<(HostId, HostId)> {
        let mut out = Vec::new();
        for (i, d) in self.delta.iter().enumerate() {
            let Some(d) = d else { continue };
            let a = HostId(i as u32);
            out.extend(d.added.iter().copied().filter(|&b| a < b).map(|b| (a, b)));
        }
        out
    }

    /// Base edges removed from the overlay, each once with `a < b`,
    /// ascending.
    pub fn removed_edges(&self) -> Vec<(HostId, HostId)> {
        let mut out = Vec::new();
        for (i, d) in self.delta.iter().enumerate() {
            let Some(d) = d else { continue };
            let a = HostId(i as u32);
            out.extend(d.removed.iter().copied().filter(|&b| a < b).map(|b| (a, b)));
        }
        out
    }

    /// Add the undirected edge `(a, b)`. Returns `true` if the overlay
    /// changed (the edge was absent). Self-loops are rejected.
    pub fn add_edge(&mut self, a: HostId, b: HostId) -> bool {
        if a == b || self.has_edge(a, b) {
            return false;
        }
        self.half_add(a, b);
        self.half_add(b, a);
        self.num_edges += 1;
        true
    }

    /// Remove the undirected edge `(a, b)`. Returns `true` if the
    /// overlay changed (the edge was present).
    pub fn remove_edge(&mut self, a: HostId, b: HostId) -> bool {
        if a == b || !self.has_edge(a, b) {
            return false;
        }
        self.half_remove(a, b);
        self.half_remove(b, a);
        self.num_edges -= 1;
        true
    }

    /// Remove every edge incident to `h` (SWIM eviction of a confirmed-
    /// failed host). Returns the removed neighbours, sorted ascending.
    pub fn isolate(&mut self, h: HostId) -> Vec<HostId> {
        let nbrs: Vec<HostId> = self.neighbors(h).to_vec();
        for &b in &nbrs {
            self.remove_edge(h, b);
        }
        nbrs
    }

    fn ensure_delta(&mut self, h: HostId) -> &mut HostDelta {
        let slot = &mut self.delta[h.index()];
        if slot.is_none() {
            *slot = Some(HostDelta {
                added: Vec::new(),
                removed: Vec::new(),
                merged: self.base.neighbors(h).to_vec(),
            });
            self.touched += 1;
        }
        slot.as_mut().expect("just filled")
    }

    /// Record the directed half of an edge addition on `a`'s delta.
    fn half_add(&mut self, a: HostId, b: HostId) {
        let in_base = self.base.has_edge(a, b);
        let d = self.ensure_delta(a);
        if in_base {
            // Re-adding a previously removed base edge: shrink the
            // delta instead of growing it.
            if let Ok(i) = d.removed.binary_search(&b) {
                d.removed.remove(i);
            }
        } else if let Err(i) = d.added.binary_search(&b) {
            d.added.insert(i, b);
        }
        if let Err(i) = d.merged.binary_search(&b) {
            d.merged.insert(i, b);
        }
        self.collapse_if_clean(a);
    }

    /// Record the directed half of an edge removal on `a`'s delta.
    fn half_remove(&mut self, a: HostId, b: HostId) {
        let in_base = self.base.has_edge(a, b);
        let d = self.ensure_delta(a);
        if in_base {
            if let Err(i) = d.removed.binary_search(&b) {
                d.removed.insert(i, b);
            }
        } else if let Ok(i) = d.added.binary_search(&b) {
            d.added.remove(i);
        }
        if let Ok(i) = d.merged.binary_search(&b) {
            d.merged.remove(i);
        }
        self.collapse_if_clean(a);
    }

    /// Drop a host's delta entry once it converges back to base, so
    /// reads return to the zero-copy CSR path and `delta_len` reflects
    /// genuine divergence only.
    fn collapse_if_clean(&mut self, a: HostId) {
        let slot = &mut self.delta[a.index()];
        if let Some(d) = slot {
            if d.added.is_empty() && d.removed.is_empty() {
                *slot = None;
                self.touched -= 1;
            }
        }
    }

    /// Materialize the current merged edge set as a standalone CSR
    /// [`Graph`], leaving the view untouched.
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::with_hosts(self.num_hosts());
        for (x, y) in self.edges() {
            b.add_edge(x, y);
        }
        b.build()
    }

    /// Fold the deltas into a fresh CSR base. After compaction the view
    /// serves every host from the CSR arena again and `delta_len() == 0`.
    /// Call periodically (e.g. when [`OverlayView::delta_len`] crosses a
    /// threshold) to bound delta memory on long runs.
    pub fn compact(&mut self) {
        if self.touched == 0 {
            return;
        }
        self.base = self.to_graph();
        self.delta.iter_mut().for_each(|d| *d = None);
        self.touched = 0;
        debug_assert_eq!(self.base.num_edges(), self.num_edges);
    }
}

impl From<Graph> for OverlayView {
    fn from(g: Graph) -> Self {
        OverlayView::new(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::with_hosts(n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(HostId(i as u32), HostId(i as u32 + 1));
        }
        b.build()
    }

    #[test]
    fn mirrors_base_until_touched() {
        let g = path(4);
        let v = OverlayView::new(g.clone());
        assert_eq!(v.num_edges(), g.num_edges());
        for h in g.hosts() {
            assert_eq!(v.neighbors(h), g.neighbors(h));
        }
        assert_eq!(v.delta_hosts(), 0);
        assert_eq!(v.delta_len(), 0);
    }

    #[test]
    fn add_and_remove_merge_sorted() {
        let mut v = OverlayView::new(path(5));
        assert!(v.add_edge(HostId(0), HostId(4)));
        assert!(!v.add_edge(HostId(4), HostId(0)), "idempotent + symmetric");
        assert_eq!(v.neighbors(HostId(0)), &[HostId(1), HostId(4)]);
        assert!(v.remove_edge(HostId(1), HostId(2)));
        assert_eq!(v.neighbors(HostId(1)), &[HostId(0)]);
        assert_eq!(v.neighbors(HostId(2)), &[HostId(3)]);
        assert_eq!(v.num_edges(), 4);
        assert!(v.has_edge(HostId(0), HostId(4)));
        assert!(!v.has_edge(HostId(2), HostId(1)));
    }

    #[test]
    fn self_loops_and_double_removal_rejected() {
        let mut v = OverlayView::new(path(3));
        assert!(!v.add_edge(HostId(1), HostId(1)));
        assert!(v.remove_edge(HostId(0), HostId(1)));
        assert!(!v.remove_edge(HostId(0), HostId(1)));
        assert_eq!(v.num_edges(), 1);
    }

    #[test]
    fn readding_removed_base_edge_shrinks_delta() {
        let mut v = OverlayView::new(path(3));
        v.remove_edge(HostId(0), HostId(1));
        assert_eq!(v.removed_edges(), vec![(HostId(0), HostId(1))]);
        v.add_edge(HostId(0), HostId(1));
        assert_eq!(v.delta_len(), 0, "delta collapses when back at base");
        assert_eq!(v.delta_hosts(), 0);
        assert_eq!(v.neighbors(HostId(0)), &[HostId(1)]);
    }

    #[test]
    fn delta_introspection() {
        let mut v = OverlayView::new(path(4));
        v.add_edge(HostId(0), HostId(3));
        v.remove_edge(HostId(1), HostId(2));
        assert_eq!(v.added_edges(), vec![(HostId(0), HostId(3))]);
        assert_eq!(v.removed_edges(), vec![(HostId(1), HostId(2))]);
        assert_eq!(v.delta_hosts(), 4);
        assert_eq!(v.delta_len(), 4);
    }

    #[test]
    fn isolate_strips_every_incident_edge() {
        let mut v = OverlayView::new(path(4));
        v.add_edge(HostId(1), HostId(3));
        let dropped = v.isolate(HostId(1));
        assert_eq!(dropped, vec![HostId(0), HostId(2), HostId(3)]);
        assert_eq!(v.degree(HostId(1)), 0);
        assert!(!v.has_edge(HostId(0), HostId(1)));
        assert_eq!(v.num_edges(), 1);
    }

    #[test]
    fn compact_folds_delta_into_csr() {
        let mut v = OverlayView::new(path(5));
        v.add_edge(HostId(0), HostId(4));
        v.remove_edge(HostId(2), HostId(3));
        let before: Vec<_> = v.edges().collect();
        let snapshot = v.to_graph();
        v.compact();
        assert_eq!(v.delta_len(), 0);
        assert_eq!(v.delta_hosts(), 0);
        let after: Vec<_> = v.edges().collect();
        assert_eq!(before, after);
        assert_eq!(v.num_edges(), snapshot.num_edges());
        for h in v.hosts() {
            assert_eq!(v.neighbors(h), snapshot.neighbors(h));
        }
        // Further mutation keeps working against the new base.
        assert!(v.add_edge(HostId(2), HostId(3)));
        assert!(v.has_edge(HostId(3), HostId(2)));
    }

    #[test]
    fn compact_on_clean_view_is_a_noop() {
        let mut v = OverlayView::new(path(3));
        let base_ptr = v.base().num_edges();
        v.compact();
        assert_eq!(v.base().num_edges(), base_ptr);
        assert_eq!(v.num_edges(), 2);
    }

    #[test]
    fn edges_reported_once_sorted() {
        let mut v = OverlayView::new(path(4));
        v.add_edge(HostId(3), HostId(0));
        let edges: Vec<_> = v.edges().collect();
        assert_eq!(
            edges,
            vec![
                (HostId(0), HostId(1)),
                (HostId(0), HostId(3)),
                (HostId(1), HostId(2)),
                (HostId(2), HostId(3)),
            ]
        );
    }
}
