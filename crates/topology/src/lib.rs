//! Network topology models and generators for the reproduction of
//! *"The Price of Validity in Dynamic Networks"* (Bawa, Gionis,
//! Garcia-Molina, Motwani; SIGMOD 2004 / JCSS 73(2007)).
//!
//! The paper models the network as an undirected graph `G = (H, E)` over a
//! set of hosts `H` with symmetric neighbour relations (§3.1). This crate
//! provides:
//!
//! * [`Graph`] — a compact undirected simple graph keyed by [`HostId`];
//! * [`generators`] — the four evaluation topologies of §6.1 (**Gnutella**,
//!   **Random**, **Power-law**, **Grid**) plus the adversarial
//!   constructions used in the proofs of Theorems 4.1, 4.2 and 4.4 and a
//!   DHT-style identifier ring used by the §5.4 size estimators;
//! * [`OverlayView`] — a mutable add/remove delta layered over the CSR
//!   graph, the substrate for overlay-maintenance protocols whose edges
//!   evolve during a run (merged reads, periodic compaction);
//! * [`analysis`] — BFS distances, diameter estimation, connected
//!   components and alive-subgraph reachability (the building block of the
//!   oracle's `HC` computation), plus degree/connectivity summaries of
//!   an [`OverlayView`] snapshot;
//! * [`ring`] — a consistent-hashing identifier ring substrate for the
//!   protocol-specific size estimator of §5.4.
//!
//! # Example
//!
//! ```
//! use pov_topology::{generators, analysis};
//!
//! let g = generators::random_average_degree(1_000, 5.0, 42);
//! assert_eq!(g.num_hosts(), 1_000);
//! let d = analysis::diameter_estimate(&g, 8, 7);
//! assert!(d > 1 && d < 20);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod generators;
mod graph;
mod overlay;
pub mod ring;

pub use graph::{EdgeSink, Graph, GraphBuilder, HostId, StreamingBuilder};
pub use overlay::OverlayView;

#[cfg(test)]
mod smoke {
    use super::*;

    #[test]
    fn crate_root_smoke() {
        let mut b = GraphBuilder::with_hosts(4);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(1), HostId(2));
        b.add_edge(HostId(2), HostId(3));
        let g = b.build();
        assert_eq!(g.num_hosts(), 4);
        assert_eq!(g.neighbors(HostId(1)), &[HostId(0), HostId(2)]);
        assert_eq!(generators::grid_square(3).num_hosts(), 9);
    }
}
