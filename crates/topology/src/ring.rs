//! Identifier-ring overlay (Chord/Viceroy-style) for the protocol-specific
//! size estimator of §5.4.
//!
//! Some P2P protocols \[23,34,36\] assign hosts random identifiers on a unit
//! ring; each host manages the segment between its own identifier and its
//! immediate clockwise predecessor. §5.4 observes that if `Xs` is the sum
//! of segment lengths managed by a sample of `s` hosts, then `s / Xs` is an
//! unbiased estimator of `|H|`. [`IdentifierRing`] provides the substrate:
//! random ids, segment lengths, joins and leaves.

use crate::HostId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A unit-length identifier ring with hosts placed at random positions.
#[derive(Clone, Debug)]
pub struct IdentifierRing {
    /// position → host, sorted by position (the ring order).
    positions: BTreeMap<u64, HostId>,
    /// host → position (inverse map; `u64::MAX` sentinel = absent).
    of_host: Vec<Option<u64>>,
    rng: SmallRng,
}

/// Resolution of the ring: positions are u64 fractions of the unit circle.
const RING: f64 = u64::MAX as f64;

impl IdentifierRing {
    /// Create a ring with hosts `0..n` placed at random positions.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut ring = IdentifierRing {
            positions: BTreeMap::new(),
            of_host: vec![None; n],
            rng: SmallRng::seed_from_u64(seed),
        };
        for h in 0..n {
            ring.join(HostId(h as u32));
        }
        ring
    }

    /// Number of hosts currently on the ring.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Place a host at a fresh random position. No-op if already present.
    pub fn join(&mut self, h: HostId) {
        if h.index() >= self.of_host.len() {
            self.of_host.resize(h.index() + 1, None);
        }
        if self.of_host[h.index()].is_some() {
            return;
        }
        loop {
            let pos: u64 = self.rng.gen();
            if let std::collections::btree_map::Entry::Vacant(e) = self.positions.entry(pos) {
                e.insert(h);
                self.of_host[h.index()] = Some(pos);
                return;
            }
        }
    }

    /// Remove a host from the ring (host failure). No-op if absent.
    pub fn leave(&mut self, h: HostId) {
        if let Some(pos) = self.of_host.get(h.index()).copied().flatten() {
            self.positions.remove(&pos);
            self.of_host[h.index()] = None;
        }
    }

    /// Whether `h` is currently on the ring.
    pub fn contains(&self, h: HostId) -> bool {
        self.of_host.get(h.index()).copied().flatten().is_some()
    }

    /// The length (fraction of the unit circle) of the segment managed by
    /// `h`: the arc from its immediate counter-clockwise predecessor to
    /// itself. Returns `None` if `h` is not on the ring.
    pub fn segment_length(&self, h: HostId) -> Option<f64> {
        let pos = self.of_host.get(h.index()).copied().flatten()?;
        if self.positions.len() == 1 {
            return Some(1.0);
        }
        let pred = self
            .positions
            .range(..pos)
            .next_back()
            .or_else(|| self.positions.iter().next_back())
            .map(|(&p, _)| p)
            .expect("ring has >= 2 hosts");
        let arc = pos.wrapping_sub(pred);
        Some(arc as f64 / RING)
    }

    /// Sample `s` distinct hosts uniformly at random from the ring.
    /// Returns fewer if the ring holds fewer than `s` hosts.
    pub fn sample(&mut self, s: usize) -> Vec<HostId> {
        let hosts: Vec<HostId> = self.positions.values().copied().collect();
        let mut picked = Vec::with_capacity(s.min(hosts.len()));
        let mut idx: Vec<usize> = (0..hosts.len()).collect();
        for i in 0..s.min(hosts.len()) {
            let j = self.rng.gen_range(i..idx.len());
            idx.swap(i, j);
            picked.push(hosts[idx[i]]);
        }
        picked
    }

    /// The §5.4 unbiased size estimate from a host sample: `s / Xs` where
    /// `Xs` is the total segment length managed by the sample.
    pub fn size_estimate(&self, sample: &[HostId]) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0usize;
        for &h in sample {
            total += self.segment_length(h)?;
            count += 1;
        }
        if count == 0 || total <= 0.0 {
            None
        } else {
            Some(count as f64 / total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_sum_to_one() {
        let ring = IdentifierRing::new(100, 42);
        let total: f64 = (0..100)
            .map(|h| ring.segment_length(HostId(h)).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn singleton_owns_whole_ring() {
        let ring = IdentifierRing::new(1, 0);
        assert_eq!(ring.segment_length(HostId(0)), Some(1.0));
    }

    #[test]
    fn join_and_leave() {
        let mut ring = IdentifierRing::new(10, 1);
        assert_eq!(ring.len(), 10);
        ring.leave(HostId(3));
        assert_eq!(ring.len(), 9);
        assert!(!ring.contains(HostId(3)));
        assert_eq!(ring.segment_length(HostId(3)), None);
        ring.join(HostId(3));
        assert_eq!(ring.len(), 10);
        // Segments still partition the circle after churn.
        let total: f64 = (0..10).filter_map(|h| ring.segment_length(HostId(h))).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn double_join_is_noop() {
        let mut ring = IdentifierRing::new(5, 2);
        ring.join(HostId(2));
        assert_eq!(ring.len(), 5);
    }

    #[test]
    fn full_sample_estimate_is_exact() {
        // With the entire population sampled, Xs = 1 so the estimate is
        // exactly |H|.
        let ring = IdentifierRing::new(64, 9);
        let all: Vec<HostId> = (0..64).map(HostId).collect();
        let est = ring.size_estimate(&all).unwrap();
        assert!((est - 64.0).abs() < 1e-6, "estimate {est}");
    }

    #[test]
    fn sampled_estimate_is_in_the_ballpark() {
        let mut ring = IdentifierRing::new(10_000, 13);
        // Average over independent samples: the estimator is unbiased, so
        // the mean should land near the true size.
        let mut acc = 0.0;
        let trials = 40;
        for _ in 0..trials {
            let sample = ring.sample(200);
            acc += ring.size_estimate(&sample).unwrap();
        }
        let mean = acc / trials as f64;
        assert!(
            (5_000.0..20_000.0).contains(&mean),
            "mean estimate {mean} too far from 10000"
        );
    }

    #[test]
    fn sample_is_distinct() {
        let mut ring = IdentifierRing::new(50, 3);
        let s = ring.sample(50);
        let mut ids: Vec<u32> = s.iter().map(|h| h.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn sample_larger_than_population() {
        let mut ring = IdentifierRing::new(5, 3);
        assert_eq!(ring.sample(10).len(), 5);
    }
}
