//! Graph analysis: BFS distances, diameter, components, alive-subgraph
//! reachability.
//!
//! The paper's validity bounds hinge on hop distances: WILDFIRE and
//! ALLREPORT run for `2·D̂·δ` where `D̂` overestimates the *stable
//! diameter* (§4.1), and the oracle's `HC` is the set of hosts with a
//! stable path to the querying host. All of those reduce to BFS over
//! (sub)graphs, implemented here.

use crate::{Graph, HostId, OverlayView};
use std::collections::VecDeque;

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS hop distances from `source` to every host; `UNREACHABLE` where no
/// path exists.
pub fn bfs_distances(g: &Graph, source: HostId) -> Vec<u32> {
    bfs_distances_filtered(g, source, |_| true)
}

/// BFS hop distances from `source` restricted to hosts for which
/// `alive(h)` is true. If `alive(source)` is false every host is
/// unreachable.
///
/// This is the primitive behind the oracle's `HC` computation: running it
/// over the subgraph of hosts alive during the whole query interval yields
/// exactly the set of hosts with a *stable path* to the source (§4.1).
pub fn bfs_distances_filtered(
    g: &Graph,
    source: HostId,
    alive: impl Fn(HostId) -> bool,
) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_hosts()];
    if !alive(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE && alive(v) {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `source`: the largest finite BFS distance from it.
pub fn eccentricity(g: &Graph, source: HostId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Lower-bound estimate of the diameter by repeated *double sweep*:
/// start from a host, BFS to the farthest host, BFS again from there, and
/// repeat from `probes` pseudo-random starting hosts. Exact on trees and
/// empirically tight on the small-world topologies used in §6 (\[2,33\]
/// report such graphs have diameter growing very slowly with `|H|`).
pub fn diameter_estimate(g: &Graph, probes: u32, seed: u64) -> u32 {
    let n = g.num_hosts();
    if n == 0 {
        return 0;
    }
    let mut best = 0;
    let mut state = seed | 1;
    for _ in 0..probes.max(1) {
        // xorshift over host ids; determinism matters more than quality here.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let start = HostId((state % n as u64) as u32);
        let d1 = bfs_distances(g, start);
        let far = farthest(&d1).unwrap_or(start);
        let d2 = bfs_distances(g, far);
        let ecc = d2
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

fn farthest(dist: &[u32]) -> Option<HostId> {
    dist.iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| HostId(i as u32))
}

/// Exact diameter by all-pairs BFS. `O(|H|·(|H|+|E|))`; only for small
/// graphs (tests, adversarial instances).
pub fn diameter_exact(g: &Graph) -> u32 {
    g.hosts().map(|h| eccentricity(g, h)).max().unwrap_or(0)
}

/// Whether the whole graph is one connected component.
pub fn is_connected(g: &Graph) -> bool {
    if g.num_hosts() == 0 {
        return true;
    }
    bfs_distances(g, HostId(0))
        .iter()
        .all(|&d| d != UNREACHABLE)
}

/// Connected components; each component is a sorted list of hosts.
pub fn connected_components(g: &Graph) -> Vec<Vec<HostId>> {
    let mut comp = vec![usize::MAX; g.num_hosts()];
    let mut components = Vec::new();
    for h in g.hosts() {
        if comp[h.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        comp[h.index()] = id;
        queue.push_back(h);
        while let Some(u) = queue.pop_front() {
            members.push(u);
            for &v in g.neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = id;
                    queue.push_back(v);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// Connect a graph that may have several components by wiring each
/// secondary component to the largest one with a single edge (between the
/// lowest-id hosts). Returns the number of edges added.
///
/// The §6 experiments assume `hq` can initially reach everyone; random
/// generators occasionally leave stragglers, which this repairs without
/// materially changing the degree distribution.
pub fn connect_components(g: &Graph) -> (Graph, usize) {
    let comps = connected_components(g);
    if comps.len() <= 1 {
        return (g.clone(), 0);
    }
    let largest = comps
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.len())
        .map(|(i, _)| i)
        .expect("at least one component");
    let anchor = comps[largest][0];
    // Patch edges are few (one per secondary component) and connect
    // previously disjoint components, so none can duplicate an existing
    // edge. Merge them into the sorted CSR slices directly instead of
    // re-materializing the whole graph through a GraphBuilder.
    let mut patch: Vec<(HostId, HostId)> = Vec::with_capacity(2 * (comps.len() - 1));
    let mut added = 0;
    for (i, c) in comps.iter().enumerate() {
        if i != largest {
            patch.push((anchor, c[0]));
            patch.push((c[0], anchor));
            added += 1;
        }
    }
    patch.sort_unstable();
    let n = g.num_hosts();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets = Vec::with_capacity(2 * (g.num_edges() + added));
    offsets.push(0u32);
    let mut pi = 0;
    for h in g.hosts() {
        let old = g.neighbors(h);
        let start = pi;
        while pi < patch.len() && patch[pi].0 == h {
            pi += 1;
        }
        let extras = &patch[start..pi];
        let (mut oi, mut ei) = (0, 0);
        while oi < old.len() && ei < extras.len() {
            if old[oi] < extras[ei].1 {
                targets.push(old[oi]);
                oi += 1;
            } else {
                targets.push(extras[ei].1);
                ei += 1;
            }
        }
        targets.extend_from_slice(&old[oi..]);
        targets.extend(extras[ei..].iter().map(|&(_, nb)| nb));
        offsets.push(targets.len() as u32);
    }
    (
        Graph::from_csr(offsets, targets, g.num_edges() + added),
        added,
    )
}

/// Degree-distribution summary of an [`OverlayView`] snapshot: the
/// shape of the maintained overlay at one instant, reported by
/// `repro overlay` and consumed by topology-aware adversaries.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeSummary {
    /// Smallest degree over all hosts (0 on an empty graph).
    pub min: usize,
    /// Largest degree over all hosts.
    pub max: usize,
    /// Mean degree `2|E| / |H|`.
    pub mean: f64,
    /// Hosts with degree zero — detached hosts the overlay has evicted
    /// or not yet re-attached.
    pub isolated: usize,
    /// `histogram[d]` = number of hosts with degree `d`.
    pub histogram: Vec<usize>,
}

/// Degree distribution of the overlay's *current* merged edge set.
pub fn overlay_degree_summary(v: &OverlayView) -> DegreeSummary {
    let n = v.num_hosts();
    let degrees: Vec<usize> = v.hosts().map(|h| v.degree(h)).collect();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut histogram = vec![0usize; max + 1];
    for &d in &degrees {
        histogram[d] += 1;
    }
    DegreeSummary {
        min: degrees.iter().copied().min().unwrap_or(0),
        max,
        mean: if n == 0 {
            0.0
        } else {
            2.0 * v.num_edges() as f64 / n as f64
        },
        isolated: histogram.first().copied().unwrap_or(0),
        histogram,
    }
}

/// Connectivity summary of an [`OverlayView`] snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectivitySummary {
    /// Number of connected components (isolated hosts count as
    /// singleton components).
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Whether the snapshot is one connected component.
    pub connected: bool,
}

/// Connectivity of the overlay's *current* merged edge set, via BFS
/// over [`OverlayView::neighbors`] (no CSR materialization).
pub fn overlay_connectivity(v: &OverlayView) -> ConnectivitySummary {
    let n = v.num_hosts();
    let mut seen = vec![false; n];
    let mut components = 0usize;
    let mut largest = 0usize;
    let mut queue = VecDeque::new();
    for h in v.hosts() {
        if seen[h.index()] {
            continue;
        }
        components += 1;
        let mut size = 0usize;
        seen[h.index()] = true;
        queue.push_back(h);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &w in v.neighbors(u) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        largest = largest.max(size);
    }
    ConnectivitySummary {
        components,
        largest_component: largest,
        connected: components <= 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::with_hosts(n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(HostId(i as u32), HostId(i as u32 + 1));
        }
        b.build()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, HostId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_component() {
        let mut b = GraphBuilder::with_hosts(4);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(2), HostId(3));
        let g = b.build();
        let d = bfs_distances(&g, HostId(0));
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn filtered_bfs_respects_dead_hosts() {
        // 0-1-2-3 with host 1 dead: 2,3 unreachable from 0.
        let g = path(4);
        let d = bfs_distances_filtered(&g, HostId(0), |h| h != HostId(1));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], UNREACHABLE);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn filtered_bfs_dead_source() {
        let g = path(3);
        let d = bfs_distances_filtered(&g, HostId(0), |_| false);
        assert!(d.iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let g = path(10);
        assert_eq!(diameter_exact(&g), 9);
        // Double sweep is exact on trees.
        assert_eq!(diameter_estimate(&g, 4, 3), 9);
    }

    #[test]
    fn diameter_of_cycle() {
        let n = 10;
        let mut b = GraphBuilder::with_hosts(n);
        for i in 0..n {
            b.add_edge(HostId(i as u32), HostId(((i + 1) % n) as u32));
        }
        let g = b.build();
        assert_eq!(diameter_exact(&g), 5);
        assert!(diameter_estimate(&g, 8, 11) <= 5);
        assert!(diameter_estimate(&g, 8, 11) >= 4);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&path(6)));
        let mut b = GraphBuilder::with_hosts(3);
        b.add_edge(HostId(0), HostId(1));
        let g = b.build();
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![HostId(0), HostId(1)]);
        assert_eq!(comps[1], vec![HostId(2)]);
    }

    #[test]
    fn connect_components_repairs_graph() {
        let mut b = GraphBuilder::with_hosts(5);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(2), HostId(3));
        let g = b.build();
        let (fixed, added) = connect_components(&g);
        assert_eq!(added, 2);
        assert!(is_connected(&fixed));
        assert_eq!(fixed.num_edges(), 4);
    }

    #[test]
    fn connect_components_noop_when_connected() {
        let g = path(4);
        let (fixed, added) = connect_components(&g);
        assert_eq!(added, 0);
        assert_eq!(fixed.num_edges(), g.num_edges());
    }

    #[test]
    fn overlay_degree_summary_tracks_the_delta() {
        let mut v = OverlayView::new(path(4));
        let s = overlay_degree_summary(&v);
        assert_eq!((s.min, s.max, s.isolated), (1, 2, 0));
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.histogram, vec![0, 2, 2]);
        // Evict host 1: its edges vanish, host 0 detaches.
        v.isolate(HostId(1));
        let s = overlay_degree_summary(&v);
        assert_eq!(s.isolated, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.histogram[0], 2);
    }

    #[test]
    fn overlay_connectivity_tracks_the_delta() {
        let mut v = OverlayView::new(path(4));
        assert_eq!(
            overlay_connectivity(&v),
            ConnectivitySummary {
                components: 1,
                largest_component: 4,
                connected: true,
            }
        );
        v.remove_edge(HostId(1), HostId(2));
        let c = overlay_connectivity(&v);
        assert_eq!(c.components, 2);
        assert_eq!(c.largest_component, 2);
        assert!(!c.connected);
        // A maintained overlay re-attaching at a new point heals it.
        v.add_edge(HostId(0), HostId(3));
        assert!(overlay_connectivity(&v).connected);
    }

    #[test]
    fn overlay_summaries_on_empty_view() {
        let v = OverlayView::new(Graph::with_hosts(0));
        let s = overlay_degree_summary(&v);
        assert_eq!((s.min, s.max, s.isolated), (0, 0, 0));
        let c = overlay_connectivity(&v);
        assert_eq!(c.components, 0);
        assert!(c.connected);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::with_hosts(0);
        assert!(is_connected(&g));
        assert_eq!(diameter_estimate(&g, 3, 1), 0);
        assert_eq!(connected_components(&g).len(), 0);
    }
}
