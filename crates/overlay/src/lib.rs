//! Dynamic overlay membership for the Price-of-Validity reproduction:
//! bounded partial views with periodic shuffles (the HyParView family)
//! plus probe/indirect-probe/suspicion failure detection (the SWIM
//! family), packaged as an [`OverlayDriver`] the simulator's event loop
//! polls each tick.
//!
//! The paper (§3.2) treats the network graph as *given* — hosts fail
//! and join, but the edge set over the survivors is static. Real P2P
//! deployments maintain that edge set with a membership protocol:
//! each host keeps a small **active view** of overlay links it routes
//! over and a larger **passive view** of fallback contacts, refreshed
//! by shuffles; a failure detector probes neighbours and evicts the
//! confirmed-dead, and rejoining hosts attach at *new* points rather
//! than resurrecting their old edges. [`OverlayMaintenance`] implements
//! that maintenance plane as a deterministic centralized state machine
//! (the same engineering stance as the simulator's `SketchAdversary`:
//! one omniscient driver, per-host behaviour emulated in ascending host
//! order from one seeded RNG), so a maintained-overlay run can be
//! compared against a static-graph run under *equal churn* — the
//! validity/cost gap the `repro overlay` experiment reports.
//!
//! Determinism rules (the same contract every engine hook obeys):
//!
//! * all randomness comes from the driver's own [`SmallRng`], seeded
//!   from [`OverlayConfig::seed`] — the engine's RNG is never touched;
//! * hosts are visited in ascending id order, pending probes and
//!   suspicions expire in insertion order;
//! * decisions depend only on virtual time, the view's alive flags and
//!   the overlay's current adjacency — never on wall clock or memory
//!   addresses.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use pov_sim::{EngineView, OverlayDriver, OverlayEvent, OverlayStats, Time};
use pov_topology::HostId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the maintenance plane. The defaults follow the
/// usual HyParView/SWIM ballpark scaled to the paper's §6.1 topologies
/// (average degree ≈ 4): small active views, a passive view a few times
/// larger, probe rounds a few ticks apart.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverlayConfig {
    /// Target active-view size: hosts below this overlay degree promote
    /// passive contacts; hosts above `max(active_degree, base degree)`
    /// shed a random link.
    pub active_degree: usize,
    /// Passive-view capacity per host (fallback contacts only; passive
    /// entries are not overlay edges).
    pub passive_degree: usize,
    /// Ticks between shuffle rounds (passive refresh + promotions).
    pub shuffle_every: u64,
    /// Ticks between failure-detector probe rounds.
    pub probe_every: u64,
    /// Ticks a (direct or indirect) probe waits for its ack.
    pub probe_timeout: u64,
    /// Indirect probes fanned out when a direct probe goes unanswered.
    pub indirect_probes: usize,
    /// Ticks a suspicion stays open before it is acted on: a target
    /// still dead at expiry is evicted, a live one refutes it.
    pub suspicion_timeout: u64,
    /// Probability that a probe of a *live* neighbour is lost in the
    /// network — the SWIM false-positive path. Such a probe escalates
    /// through the indirect stage into a suspicion that the live target
    /// then refutes; it is never wrongfully evicted.
    pub false_positive: f64,
    /// Seed of the driver's private RNG.
    pub seed: u64,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            active_degree: 5,
            passive_degree: 16,
            shuffle_every: 16,
            probe_every: 4,
            probe_timeout: 2,
            indirect_probes: 2,
            suspicion_timeout: 4,
            false_positive: 0.01,
            seed: 0,
        }
    }
}

/// A pending failure-detector probe (direct, or the merged indirect
/// fan-out that follows an unanswered direct one).
#[derive(Clone, Copy, Debug)]
struct Probe {
    due: Time,
    prober: HostId,
    target: HostId,
    /// Whether this record is the indirect stage.
    indirect: bool,
    /// The direct probe was lost to the false-positive roll even though
    /// the target is alive; the blip persists through the indirect
    /// stage, producing a (refutable) false suspicion.
    fp: bool,
}

/// An open suspicion awaiting confirmation or refutation.
#[derive(Clone, Copy, Debug)]
struct Suspicion {
    due: Time,
    target: HostId,
}

/// Lazily initialized per-run state (sized on first poll, when the
/// driver first sees the view).
struct State {
    /// Alive flags at the previous poll — the join/fail edge detector.
    prev_alive: Vec<bool>,
    /// Hosts the detector confirmed dead and cut out of the overlay.
    evicted: Vec<bool>,
    /// Per-host passive view (fallback contacts, not overlay edges).
    passive: Vec<Vec<HostId>>,
    probes: Vec<Probe>,
    suspicions: Vec<Suspicion>,
}

/// The HyParView/SWIM-style maintenance driver. Install it with
/// [`SimBuilder::overlay`](pov_sim::SimBuilder::overlay); the engine
/// polls it every tick through `until` and applies the edge mutations
/// it emits to the run's [`OverlayView`](pov_topology::OverlayView).
pub struct OverlayMaintenance {
    cfg: OverlayConfig,
    until: Time,
    rng: SmallRng,
    stats: OverlayStats,
    state: Option<State>,
}

impl OverlayMaintenance {
    /// A driver that maintains the overlay until `until` (inclusive).
    /// The bound is what lets `run_to_quiescence` terminate; pick the
    /// run's horizon.
    ///
    /// # Panics
    /// Panics if `active_degree == 0` or `false_positive` is outside
    /// `[0, 1]`.
    pub fn new(cfg: OverlayConfig, until: Time) -> Self {
        assert!(cfg.active_degree >= 1, "active view must hold an edge");
        assert!(
            (0.0..=1.0).contains(&cfg.false_positive),
            "false_positive is a probability"
        );
        OverlayMaintenance {
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            until,
            stats: OverlayStats::default(),
            state: None,
        }
    }

    /// The configuration this driver runs with.
    pub fn config(&self) -> &OverlayConfig {
        &self.cfg
    }

    /// Pick `k` distinct entries from `pool` (partial Fisher–Yates;
    /// order of the survivors is the draw order).
    fn sample_k(rng: &mut SmallRng, pool: &mut Vec<HostId>, k: usize) {
        let k = k.min(pool.len());
        for i in 0..k {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(k);
    }

    fn init_state(&mut self, view: &EngineView<'_>) -> State {
        let n = view.alive.len();
        let mut passive = Vec::with_capacity(n);
        for h in 0..n {
            let mut pool: Vec<HostId> = (0..n as u32)
                .map(HostId)
                .filter(|&c| c.index() != h && view.alive[c.index()])
                .collect();
            Self::sample_k(&mut self.rng, &mut pool, self.cfg.passive_degree);
            passive.push(pool);
        }
        State {
            prev_alive: view.alive.to_vec(),
            evicted: vec![false; n],
            passive,
            probes: Vec::new(),
            suspicions: Vec::new(),
        }
    }
}

impl OverlayDriver for OverlayMaintenance {
    fn next_events(&mut self, now: Time, view: &EngineView<'_>, out: &mut Vec<OverlayEvent>) {
        if self.state.is_none() {
            self.state = Some(self.init_state(view));
        }
        let n = view.alive.len();
        let cfg = self.cfg;
        let mut st = self.state.take().expect("state initialized");

        // (a) Rejoins: hosts that came (back) alive since the last
        // poll, and evicted hosts found alive again, attach at fresh
        // points — never by resurrecting their old edge set.
        for i in 0..n {
            let h = HostId(i as u32);
            let joined = view.alive[i] && !st.prev_alive[i];
            let recovered = view.alive[i] && st.evicted[i];
            if !joined && !recovered {
                continue;
            }
            st.evicted[i] = false;
            st.probes.retain(|p| p.prober != h && p.target != h);
            st.suspicions.retain(|s| s.target != h);
            let current = view.neighbors(h);
            let mut pool: Vec<HostId> = (0..n as u32)
                .map(HostId)
                .filter(|&c| {
                    c != h
                        && view.alive[c.index()]
                        && !st.evicted[c.index()]
                        && !current.contains(&c)
                })
                .collect();
            Self::sample_k(&mut self.rng, &mut pool, cfg.active_degree);
            self.stats.maintenance_msgs += 2 * pool.len() as u64;
            for &p in &pool {
                out.push(OverlayEvent::AddEdge(h, p));
            }
            self.stats.rejoins += 1;
        }

        // (b) Expiries, in insertion order. Direct probes of a dead (or
        // false-positive-lost) target escalate to the indirect stage;
        // indirect failures raise a suspicion; suspicion expiry evicts
        // a still-dead target or is refuted by a live one.
        let mut i = 0;
        while i < st.probes.len() {
            if st.probes[i].due > now {
                i += 1;
                continue;
            }
            let p = st.probes.remove(i);
            if !view.alive[p.prober.index()] {
                continue; // the prober itself died; its probe is moot
            }
            let target_alive = view.alive[p.target.index()];
            if !p.indirect {
                let fp = target_alive && self.rng.gen_bool(cfg.false_positive);
                if !target_alive || fp {
                    self.stats.maintenance_msgs += 2 * cfg.indirect_probes as u64;
                    st.probes.push(Probe {
                        due: now + cfg.probe_timeout,
                        indirect: true,
                        fp,
                        ..p
                    });
                }
            } else if (!target_alive || p.fp) && !st.suspicions.iter().any(|s| s.target == p.target)
            {
                self.stats.suspicions += 1;
                st.suspicions.push(Suspicion {
                    due: now + cfg.suspicion_timeout,
                    target: p.target,
                });
            }
        }
        let mut i = 0;
        while i < st.suspicions.len() {
            if st.suspicions[i].due > now {
                i += 1;
                continue;
            }
            let s = st.suspicions.remove(i);
            let t = s.target.index();
            if view.alive[t] {
                self.stats.false_suspicions += 1;
            } else if !st.evicted[t] {
                st.evicted[t] = true;
                self.stats.evictions += 1;
                for &nb in view.neighbors(s.target) {
                    out.push(OverlayEvent::RemoveEdge(s.target, nb));
                }
            }
        }

        // (c) Probe round: every alive host pings one random overlay
        // neighbour (it cannot know whether the neighbour is alive —
        // that is what the probe finds out).
        if now.ticks() > 0 && now.ticks().is_multiple_of(cfg.probe_every) {
            for i in 0..n {
                let h = HostId(i as u32);
                if !view.alive[i] || st.evicted[i] {
                    continue;
                }
                let nbrs = view.neighbors(h);
                if nbrs.is_empty() {
                    continue;
                }
                let target = nbrs[self.rng.gen_range(0..nbrs.len())];
                self.stats.probes += 1;
                self.stats.maintenance_msgs += 2;
                st.probes.push(Probe {
                    due: now + cfg.probe_timeout,
                    prober: h,
                    target,
                    indirect: false,
                    fp: false,
                });
            }
        }

        // (d) Shuffle round: refresh one passive slot per host, promote
        // passive contacts into underfull active views, shed links past
        // the active bound.
        if now.ticks() > 0 && now.ticks().is_multiple_of(cfg.shuffle_every) {
            self.stats.shuffles += 1;
            let pool: Vec<HostId> = (0..n as u32)
                .map(HostId)
                .filter(|&c| view.alive[c.index()] && !st.evicted[c.index()])
                .collect();
            for i in 0..n {
                let h = HostId(i as u32);
                if !view.alive[i] || st.evicted[i] {
                    continue;
                }
                self.stats.maintenance_msgs += 2;
                if !pool.is_empty() {
                    let cand = pool[self.rng.gen_range(0..pool.len())];
                    if cand != h && !st.passive[i].contains(&cand) {
                        if st.passive[i].len() >= cfg.passive_degree && !st.passive[i].is_empty() {
                            let slot = self.rng.gen_range(0..st.passive[i].len());
                            st.passive[i][slot] = cand;
                        } else {
                            st.passive[i].push(cand);
                        }
                    }
                }
                let deg = view.degree(h);
                if deg < cfg.active_degree {
                    let nbrs = view.neighbors(h);
                    if let Some(&p) = st.passive[i].iter().find(|&&p| {
                        p != h
                            && view.alive[p.index()]
                            && !st.evicted[p.index()]
                            && !nbrs.contains(&p)
                    }) {
                        out.push(OverlayEvent::AddEdge(h, p));
                    }
                } else if deg > cfg.active_degree.max(view.graph.degree(h)) {
                    let nbrs = view.neighbors(h);
                    let drop = nbrs[self.rng.gen_range(0..nbrs.len())];
                    out.push(OverlayEvent::RemoveEdge(h, drop));
                }
            }
        }

        st.prev_alive.copy_from_slice(view.alive);
        self.state = Some(st);
    }

    fn next_poll(&self, now: Time) -> Option<Time> {
        (now < self.until).then(|| now + 1)
    }

    fn stats(&self) -> OverlayStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_sim::{ChurnPlan, Ctx, NodeLogic, SimBuilder};
    use pov_topology::generators::special;
    use pov_topology::Graph;

    /// Hosts that do nothing: the overlay maintenance plane is the only
    /// activity in these runs.
    struct Idle;
    impl NodeLogic for Idle {
        type Msg = ();
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
    }

    fn cfg(seed: u64) -> OverlayConfig {
        OverlayConfig {
            active_degree: 2,
            passive_degree: 6,
            shuffle_every: 8,
            probe_every: 2,
            probe_timeout: 1,
            indirect_probes: 2,
            suspicion_timeout: 2,
            false_positive: 0.0,
            seed,
        }
    }

    #[test]
    fn quiet_cycle_stays_at_base() {
        // Every host already has degree == active_degree and nobody
        // dies: probes all ack, shuffles find nothing to promote or
        // shed, the edge set never moves.
        let g = special::cycle(8);
        let mut sim = SimBuilder::new(g.clone())
            .overlay(OverlayMaintenance::new(cfg(3), Time(40)))
            .build(|_| Idle);
        sim.run_until(Time(50));
        let stats = sim.overlay_stats().unwrap();
        assert!(stats.probes > 0, "detector ran");
        assert!(stats.shuffles > 0, "shuffles ran");
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.suspicions, 0);
        assert_eq!((stats.edges_added, stats.edges_removed), (0, 0));
        let v = sim.overlay_view().unwrap();
        for h in g.hosts() {
            assert_eq!(v.neighbors(h), g.neighbors(h));
        }
    }

    #[test]
    fn dead_host_is_suspected_then_evicted() {
        let mut sim = SimBuilder::new(special::cycle(8))
            .churn(ChurnPlan::none().with_failure(Time(3), HostId(3)))
            .overlay(OverlayMaintenance::new(cfg(7), Time(60)))
            .build(|_| Idle);
        sim.run_until(Time(70));
        let stats = sim.overlay_stats().unwrap();
        assert!(stats.suspicions >= 1, "probes found the corpse");
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.false_suspicions, 0, "fp = 0");
        let v = sim.overlay_view().unwrap();
        assert_eq!(v.degree(HostId(3)), 0, "all incident edges dropped");
        // The survivors healed around the hole: nobody alive is
        // isolated, and the alive subgraph is one component.
        let alive: Vec<HostId> = (0..8u32).map(HostId).filter(|&h| sim.is_alive(h)).collect();
        for &h in &alive {
            assert!(v.degree(h) >= 1, "host {h:?} healed");
        }
        let mut seen = [false; 8];
        let mut frontier = vec![alive[0]];
        seen[alive[0].index()] = true;
        while let Some(h) = frontier.pop() {
            for &nb in v.neighbors(h) {
                if sim.is_alive(nb) && !seen[nb.index()] {
                    seen[nb.index()] = true;
                    frontier.push(nb);
                }
            }
        }
        assert!(
            alive.iter().all(|&h| seen[h.index()]),
            "alive subgraph stayed connected"
        );
    }

    #[test]
    fn false_positives_are_refuted_not_evicted() {
        let mut c = cfg(11);
        c.false_positive = 1.0; // every probe of a live host is "lost"
        let mut sim = SimBuilder::new(special::cycle(6))
            .overlay(OverlayMaintenance::new(c, Time(40)))
            .build(|_| Idle);
        sim.run_until(Time(50));
        let stats = sim.overlay_stats().unwrap();
        assert!(stats.suspicions > 0, "the blips raised suspicions");
        assert!(stats.false_suspicions > 0, "…which live hosts refuted");
        assert_eq!(stats.evictions, 0, "nobody wrongfully cut");
        assert_eq!(stats.edges_removed, 0);
    }

    #[test]
    fn rejoining_host_attaches_at_new_points() {
        // The acceptance bar: h4 dies, is evicted, rejoins — and comes
        // back wired to fresh attachment points chosen by the driver,
        // not to its old base-CSR neighbourhood.
        let g = special::cycle(10);
        let churn = ChurnPlan::none()
            .with_failure(Time(2), HostId(4))
            .with_join(Time(30), HostId(4));
        let mut sim = SimBuilder::new(g.clone())
            .churn(churn)
            .overlay(OverlayMaintenance::new(cfg(5), Time(70)))
            .build(|_| Idle);
        sim.run_until(Time(80));
        let stats = sim.overlay_stats().unwrap();
        assert!(stats.evictions >= 1, "the corpse was evicted");
        assert!(stats.rejoins >= 1, "the rejoin was seen");
        let v = sim.overlay_view().unwrap();
        let now = v.neighbors(HostId(4));
        assert!(!now.is_empty(), "attached somewhere");
        assert_ne!(
            now,
            g.neighbors(HostId(4)),
            "new points, not the old {:?}",
            g.neighbors(HostId(4))
        );
    }

    #[test]
    fn shuffles_promote_underfull_hosts() {
        // A chain's endpoints have degree 1 < active_degree 2; shuffle
        // promotions pull them up.
        let mut sim = SimBuilder::new(special::chain(8))
            .overlay(OverlayMaintenance::new(cfg(9), Time(60)))
            .build(|_| Idle);
        sim.run_until(Time(70));
        let stats = sim.overlay_stats().unwrap();
        assert!(stats.edges_added > 0, "promotions happened");
        let v = sim.overlay_view().unwrap();
        for h in 0..8u32 {
            assert!(v.degree(HostId(h)) >= 2, "host {h} reached the target");
        }
    }

    #[test]
    fn driver_is_deterministic() {
        let run = || {
            let churn = ChurnPlan::none()
                .with_failure(Time(4), HostId(2))
                .with_failure(Time(9), HostId(7))
                .with_join(Time(25), HostId(2));
            let mut sim = SimBuilder::new(special::cycle(12))
                .churn(churn)
                .overlay(OverlayMaintenance::new(cfg(42), Time(50)))
                .build(|_| Idle);
            sim.run_until(Time(60));
            let v = sim.overlay_view().unwrap();
            (sim.overlay_stats().unwrap(), Vec::from_iter(v.edges()))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn config_is_validated() {
        let bad = OverlayConfig {
            false_positive: 1.5,
            ..OverlayConfig::default()
        };
        assert!(std::panic::catch_unwind(|| OverlayMaintenance::new(bad, Time(1))).is_err());
        let zero = OverlayConfig {
            active_degree: 0,
            ..OverlayConfig::default()
        };
        assert!(std::panic::catch_unwind(|| OverlayMaintenance::new(zero, Time(1))).is_err());
    }

    #[test]
    fn base_graph_unaffected_by_maintenance() {
        let g: Graph = special::chain(6);
        let mut sim = SimBuilder::new(g.clone())
            .churn(ChurnPlan::none().with_failure(Time(2), HostId(3)))
            .overlay(OverlayMaintenance::new(cfg(1), Time(40)))
            .build(|_| Idle);
        sim.run_until(Time(50));
        for h in g.hosts() {
            assert_eq!(sim.graph().neighbors(h), g.neighbors(h));
        }
    }
}
