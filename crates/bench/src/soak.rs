//! `repro soak` — long-horizon endurance workloads for the full
//! pipeline (engine + oracle), with throughput and memory assertions.
//!
//! Where `repro bench` measures the raw event loop over short one-shot
//! runs, the soak harness answers the question a long-lived deployment
//! would ask: does the stack survive 10⁴+ simulated ticks of membership
//! drift — growth, stability, shrinkage, a partition, healing — without
//! its throughput collapsing or its memory high-water mark creeping?
//! Each workload scripts that arc as a [`PhaseSchedule`], lowers it to
//! churn/partition plans, and drives it through [`judged_plan`] as a
//! stream of continuous windows, so every window also pays the oracle's
//! `HC`/`HU` judging — the costs a registration-style consumer of the
//! paper's §4.2 semantics actually incurs.
//!
//! [`limits`] pins a floor on events/sec and a ceiling on peak RSS per
//! mode. Both are deliberately loose — an order of magnitude below/above
//! what a healthy build measures — because they run on arbitrary CI
//! hardware: they exist to catch collapse (an accidental O(n²) in the
//! window replay, a leak across 10³ windows), not percent-level drift.
//! Percent-level regressions are `repro bench --check`'s job, which
//! compares same-machine runs.

use pov_core::judged::judged_plan;
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{Aggregate, ProtocolKind, RunPlan};
use pov_core::pov_sim::{PhaseKind, PhaseSchedule};
use pov_core::pov_topology::generators::TopologyKind;
use pov_core::pov_topology::{analysis, Graph, HostId};
use pov_core::workload;
use pov_scenario::Json;
use std::time::Instant;

use crate::engine_bench::{peak_rss_kb, BenchMode};

/// One soak workload's measured result.
#[derive(Clone, Debug)]
pub struct SoakResult {
    /// Workload name.
    pub name: &'static str,
    /// Hosts in the topology.
    pub n: usize,
    /// Simulated horizon in ticks (`windows × window`), ≥ 10⁴.
    pub horizon_ticks: u64,
    /// Continuous windows the horizon was judged as.
    pub windows: usize,
    /// Windows that produced a judged outcome (the series stops early
    /// only if `hq` dies, which no schedule here allows).
    pub judged_windows: usize,
    /// Engine events dispatched (deterministic per workload).
    pub events: u64,
    /// Messages sent (deterministic per workload).
    pub messages: u64,
    /// Fraction of judged windows in which `hq` declared a value.
    pub declared_fraction: f64,
    /// Wall-clock milliseconds for the whole workload.
    pub wall_ms: f64,
    /// `events / wall seconds`.
    pub events_per_sec: f64,
    /// Simulated ticks per wall second (over `windows × (deadline+2)`
    /// actually-simulated ticks).
    pub ticks_per_sec: f64,
    /// Peak RSS (`VmHWM`, kB) after the workload; `None` off Linux.
    pub peak_rss_kb: Option<u64>,
}

/// Per-mode assertion limits: `(min_events_per_sec, max_rss_kb)`.
///
/// The floors sit ~100× below a healthy release build (which measures
/// millions of events/sec on any current machine) and the RSS ceilings
/// ~10× above the observed high-water mark (tens of MB), so only a
/// complexity blow-up or a leak can trip them. Re-baseline them by
/// running `repro soak` on a healthy build and keeping the same
/// margins; see docs/BENCHMARKING.md.
pub fn limits(mode: BenchMode) -> (f64, u64) {
    match mode {
        BenchMode::Quick => (50_000.0, 1_048_576),
        BenchMode::Full => (50_000.0, 2_097_152),
    }
}

pub(crate) struct SoakWorkload {
    pub(crate) name: &'static str,
    topology: TopologyKind,
    n: usize,
    protocol: ProtocolKind,
    /// Horizon floor in ticks; the realized horizon rounds up to a
    /// whole number of windows.
    min_horizon: u64,
    /// Builds the schedule for a realized horizon.
    schedule: fn(u64) -> PhaseSchedule,
}

/// A second dip after recovery: the regime the single-arc lifecycle
/// preset cannot express — shrink, partition, heal, then shrink and
/// heal *again*, exercising plan slicing across repeated direction
/// changes.
fn double_dip(horizon: u64) -> PhaseSchedule {
    let unit = horizon / 12;
    PhaseSchedule::with_start_alive(0.8)
        .then(PhaseKind::Growth { fraction: 0.2 }, 2 * unit)
        .then(PhaseKind::Stable, 2 * unit)
        .then(PhaseKind::Shrink { fraction: 0.35 }, 2 * unit)
        .then(PhaseKind::Partition { fraction: 0.25 }, unit)
        .then(PhaseKind::Heal, 2 * unit)
        .then(PhaseKind::Shrink { fraction: 0.25 }, unit)
        .then(PhaseKind::Heal, horizon - 10 * unit)
}

pub(crate) fn workloads(mode: BenchMode) -> Vec<SoakWorkload> {
    let (n_random, n_grid, horizon) = match mode {
        BenchMode::Quick => (300, 324, 10_000),
        BenchMode::Full => (1_000, 1_024, 20_000),
    };
    let wf = ProtocolKind::Wildfire(WildfireOpts::default());
    vec![
        SoakWorkload {
            name: "lifecycle_wildfire",
            topology: TopologyKind::Random,
            n: n_random,
            protocol: wf,
            min_horizon: horizon,
            schedule: PhaseSchedule::lifecycle,
        },
        SoakWorkload {
            name: "lifecycle_spanning_tree_grid",
            topology: TopologyKind::Grid,
            n: n_grid,
            protocol: ProtocolKind::SpanningTree,
            min_horizon: horizon,
            schedule: PhaseSchedule::lifecycle,
        },
        SoakWorkload {
            name: "double_dip_wildfire",
            topology: TopologyKind::Random,
            n: n_random,
            protocol: wf,
            min_horizon: horizon,
            schedule: double_dip,
        },
    ]
}

/// A soak workload lowered to something runnable: the topology, values,
/// and fully-assembled continuous plan. Shared between the timed run
/// and the flight-recorder replay (`crate::flight`), which must drive
/// the *identical* simulation the breach was measured on.
pub(crate) struct SoakSetup {
    pub(crate) graph: Graph,
    pub(crate) values: Vec<u64>,
    pub(crate) plan: RunPlan,
    pub(crate) protocol: ProtocolKind,
    pub(crate) windows: usize,
    pub(crate) horizon: u64,
    pub(crate) deadline: u64,
}

pub(crate) fn setup(w: &SoakWorkload) -> SoakSetup {
    // Setup outside the timed region, like the engine bench.
    let graph = w.topology.build(w.n, 7);
    let n = graph.num_hosts();
    let values = workload::paper_values(n, 0x5eed_0002);
    let d_hat = analysis::diameter_estimate(&graph, 4, 7) + 2;
    let hq = HostId(0);
    let base = RunPlan::query(Aggregate::Count)
        .d_hat(d_hat)
        .from_host(hq)
        .protocol(w.protocol);
    let deadline = base.deadline();
    // Judge the horizon as back-to-back deadline-sized windows; round
    // the window count up so the realized horizon meets the floor.
    let windows = w.min_horizon.div_ceil(deadline) as usize;
    let horizon = windows as u64 * deadline;
    let schedule = (w.schedule)(horizon);
    let lowered = schedule.lower(&graph, hq, 0x50a4_0001);
    let mut plan = base
        .churn(lowered.churn)
        .continuous(deadline, windows)
        .seed(0x50a4_0002);
    if let Some(partition) = lowered.partition {
        plan = plan.partition(partition);
    }
    SoakSetup {
        graph,
        values,
        plan,
        protocol: w.protocol,
        windows,
        horizon,
        deadline,
    }
}

fn run_workload(w: &SoakWorkload) -> SoakResult {
    let s = setup(w);
    let (windows, horizon, deadline) = (s.windows, s.horizon, s.deadline);

    let start = Instant::now();
    let outcomes = judged_plan(&s.graph, &s.values, &s.plan);
    let wall = start.elapsed();

    let windows_run = &outcomes[0].windows;
    let judged_windows = windows_run.len();
    let declared = windows_run
        .iter()
        .filter(|wj| wj.judged.value.is_some())
        .count();
    let events: u64 = windows_run
        .iter()
        .map(|wj| wj.judged.metrics.events_dispatched)
        .sum();
    let messages: u64 = windows_run
        .iter()
        .map(|wj| wj.judged.metrics.messages_sent)
        .sum();
    let wall_s = wall.as_secs_f64().max(1e-9);
    // Each window simulates deadline + 2 ticks (the declaration slack).
    let simulated = judged_windows as u64 * (deadline + 2);
    SoakResult {
        name: w.name,
        n: s.graph.num_hosts(),
        horizon_ticks: horizon,
        windows,
        judged_windows,
        events,
        messages,
        declared_fraction: declared as f64 / judged_windows.max(1) as f64,
        wall_ms: wall_s * 1e3,
        events_per_sec: events as f64 / wall_s,
        ticks_per_sec: simulated as f64 / wall_s,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Execute all soak workloads at `mode` scale.
pub fn run(mode: BenchMode) -> Vec<SoakResult> {
    workloads(mode).iter().map(run_workload).collect()
}

/// Check every result against the mode's [`limits`]: one
/// human-readable failure per breach, empty when the soak passes.
pub fn assert_limits(results: &[SoakResult], mode: BenchMode) -> Vec<String> {
    let (min_eps, max_rss) = limits(mode);
    let mut failures = Vec::new();
    for r in results {
        if r.events_per_sec < min_eps {
            failures.push(format!(
                "{}: throughput collapsed to {:.0} events/sec (floor {:.0})",
                r.name, r.events_per_sec, min_eps,
            ));
        }
        if let Some(rss) = r.peak_rss_kb {
            if rss > max_rss {
                failures.push(format!(
                    "{}: peak RSS {} kB breaches the {} kB ceiling",
                    r.name, rss, max_rss,
                ));
            }
        }
        if r.judged_windows < r.windows {
            failures.push(format!(
                "{}: only {}/{} windows judged — hq died mid-soak",
                r.name, r.judged_windows, r.windows,
            ));
        }
    }
    failures
}

/// The `repro soak --json` document.
pub fn to_json(mode: BenchMode, results: &[SoakResult]) -> Json {
    let (min_eps, max_rss) = limits(mode);
    Json::obj()
        .with("schema", "soak_engine/v1")
        .with("mode", mode.label())
        .with(
            "limits",
            Json::obj()
                .with("min_events_per_sec", min_eps)
                .with("max_rss_kb", max_rss),
        )
        .with(
            "workloads",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .with("name", r.name)
                            .with("n", r.n)
                            .with("horizon_ticks", r.horizon_ticks)
                            .with("windows", r.windows)
                            .with("judged_windows", r.judged_windows)
                            .with("events", r.events)
                            .with("messages", r.messages)
                            .with("declared_fraction", r.declared_fraction)
                            .with("wall_ms", r.wall_ms)
                            .with("events_per_sec", r.events_per_sec)
                            .with("ticks_per_sec", r.ticks_per_sec)
                            .with("peak_rss_kb", r.peak_rss_kb)
                    })
                    .collect(),
            ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_covers_the_horizon_and_passes_limits() {
        let results = run(BenchMode::Quick);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(
                r.horizon_ticks >= 10_000,
                "{}: horizon {} below the 10^4-tick soak floor",
                r.name,
                r.horizon_ticks
            );
            assert_eq!(
                r.judged_windows, r.windows,
                "{}: hq must survive the whole arc",
                r.name
            );
            assert!(r.events > 0 && r.messages > 0, "{}", r.name);
            // The membership arc never kills hq, so most windows
            // declare (partition phases may still starve a few).
            assert!(
                r.declared_fraction > 0.5,
                "{}: declared {:.2}",
                r.name,
                r.declared_fraction
            );
        }
        let failures = assert_limits(&results, BenchMode::Quick);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn soak_event_counts_are_deterministic() {
        let a = run(BenchMode::Quick);
        let b = run(BenchMode::Quick);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.events, y.events, "{}", x.name);
            assert_eq!(x.messages, y.messages, "{}", x.name);
        }
    }

    #[test]
    fn limit_breaches_are_reported_per_workload() {
        let healthy = SoakResult {
            name: "synthetic",
            n: 100,
            horizon_ticks: 10_000,
            windows: 500,
            judged_windows: 500,
            events: 1_000_000,
            messages: 900_000,
            declared_fraction: 1.0,
            wall_ms: 100.0,
            events_per_sec: 1.0e7,
            ticks_per_sec: 1.0e5,
            peak_rss_kb: Some(50_000),
        };
        assert!(assert_limits(std::slice::from_ref(&healthy), BenchMode::Quick).is_empty());
        let collapsed = SoakResult {
            events_per_sec: 10.0,
            ..healthy.clone()
        };
        let fails = assert_limits(&[collapsed], BenchMode::Quick);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("throughput collapsed"), "{fails:?}");
        let bloated = SoakResult {
            peak_rss_kb: Some(2_000_000),
            ..healthy.clone()
        };
        let fails = assert_limits(&[bloated], BenchMode::Quick);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("peak RSS"), "{fails:?}");
        let truncated = SoakResult {
            judged_windows: 400,
            ..healthy
        };
        let fails = assert_limits(&[truncated], BenchMode::Quick);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("hq died"), "{fails:?}");
    }

    #[test]
    fn soak_json_schema() {
        let results = run(BenchMode::Quick);
        let doc = to_json(BenchMode::Quick, &results).render();
        for needle in [
            "\"schema\": \"soak_engine/v1\"",
            "\"limits\"",
            "\"min_events_per_sec\"",
            "\"horizon_ticks\"",
            "\"lifecycle_wildfire\"",
            "\"lifecycle_spanning_tree_grid\"",
            "\"double_dip_wildfire\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
        assert!(Json::parse(&doc).is_ok());
    }
}
