//! The per-PR performance trajectory of `BENCH_engine.json`: the
//! `history` array that `repro bench --json` appends to on every run,
//! and the `--check` regression gate that compares a fresh measurement
//! against a baseline document.
//!
//! The trajectory answers "did this PR make the engine slower?" without
//! a dashboard: every `--json` run appends one entry keyed by the git
//! SHA it measured, so the committed document accumulates a
//! machine-readable perf history of the repo — and `--check` turns the
//! latest entry of any such document into a pass/fail gate (> 10%
//! events/sec drop or an RSS ceiling breach exits non-zero). Absolute
//! numbers only compare within one machine, which is why the CI gate
//! measures its own fresh baseline first rather than trusting the
//! committed one.

use crate::engine_bench::BenchResult;
use pov_scenario::Json;

/// Throughput drop tolerated by [`check_against`] before it fails:
/// events/sec may fall to `(1 - MAX_DROP)` of the baseline. 10% rides
/// above same-machine run-to-run noise (a few percent) while catching
/// any real hot-path regression.
pub const MAX_DROP: f64 = 0.10;

/// RSS growth tolerated by [`check_against`]: peak RSS may grow to
/// `RSS_FACTOR ×` the baseline. Peak RSS is a coarse high-water mark
/// (allocator pooling, test-order effects), so the ceiling is loose —
/// it exists to catch leaks and accidental per-event allocations, not
/// kilobyte drift.
pub const RSS_FACTOR: f64 = 1.5;

/// The short git SHA of `HEAD`, or `"unknown"` outside a git checkout
/// (or when `git` itself is unavailable).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One trajectory entry: the measurements of one `repro bench` run,
/// keyed by the git SHA it measured.
pub fn history_entry(sha: &str, mode_label: &str, threads: usize, results: &[BenchResult]) -> Json {
    let mut workloads = Json::obj();
    for r in results {
        workloads = workloads.with(
            r.name,
            Json::obj()
                .with("events_per_sec", r.events_per_sec)
                .with("ticks_per_sec", r.ticks_per_sec)
                .with("peak_rss_kb", r.peak_rss_kb),
        );
    }
    Json::obj()
        .with("sha", sha)
        .with("mode", mode_label)
        .with("threads", threads)
        .with("workloads", workloads)
}

/// The `history` array for a fresh document: the prior document's
/// entries (if `prior` parses) with `entry` appended.
///
/// A prior `bench_engine/v1` document carries no `history`, only its
/// own measurements — those migrate as a synthesized first entry keyed
/// `"pre-v2"`, so upgrading the schema never discards the one data
/// point the old file recorded. An unreadable or unparseable prior is
/// treated as absent (the history restarts) rather than an error: the
/// bench must stay runnable in a dirty working tree.
pub fn appended_history(prior: Option<&str>, entry: Json) -> Vec<Json> {
    let mut history: Vec<Json> = Vec::new();
    if let Some(doc) = prior.and_then(|text| Json::parse(text).ok()) {
        match doc.get("history").and_then(Json::as_arr) {
            Some(entries) => history.extend(entries.iter().cloned()),
            None => {
                if let Some(migrated) = migrate_v1(&doc) {
                    history.push(migrated);
                }
            }
        }
    }
    history.push(entry);
    history
}

/// Synthesize a history entry from a v1 document's `workloads` array.
fn migrate_v1(doc: &Json) -> Option<Json> {
    let workloads = doc.get("workloads")?.as_arr()?;
    let mut obj = Json::obj();
    for w in workloads {
        let name = w.get("name")?.as_str()?;
        obj = obj.with(
            name,
            Json::obj()
                .with("events_per_sec", w.get("events_per_sec")?.as_f64()?)
                .with(
                    "ticks_per_sec",
                    w.get("ticks_per_sec").and_then(Json::as_f64),
                )
                .with("peak_rss_kb", w.get("peak_rss_kb").and_then(Json::as_i64)),
        );
    }
    Some(
        Json::obj()
            .with("sha", "pre-v2")
            .with(
                "mode",
                doc.get("mode").and_then(Json::as_str).unwrap_or("unknown"),
            )
            .with("threads", 1u32)
            .with("workloads", obj),
    )
}

/// The baseline numbers a `--check` run compares against: per workload,
/// `(events_per_sec, peak_rss_kb)` from the *most recent* history entry
/// of a v2 document that measured that workload, or from the
/// measurements of a v1 document. Entries merge newest-first rather
/// than reading only the last one: a `--scale` run appends an entry
/// carrying only `scale_*` rungs, and it must not shadow the latest
/// fixed-workload measurements a subsequent `--check` compares against.
fn baseline_numbers(doc: &Json) -> Vec<(String, f64, Option<i64>)> {
    // v2: history entries, newest first, first reading per name wins.
    if let Some(entries) = doc.get("history").and_then(Json::as_arr) {
        let mut merged: Vec<(String, f64, Option<i64>)> = Vec::new();
        for entry in entries.iter().rev() {
            for (name, eps, rss) in baseline_numbers_of_entry(entry) {
                if !merged.iter().any(|(n, _, _)| *n == name) {
                    merged.push((name, eps, rss));
                }
            }
        }
        if !merged.is_empty() {
            return merged;
        }
    }
    // v1: the flat workloads array.
    migrate_v1(doc)
        .as_ref()
        .map(baseline_numbers_of_entry)
        .unwrap_or_default()
}

fn baseline_numbers_of_entry(entry: &Json) -> Vec<(String, f64, Option<i64>)> {
    match entry.get("workloads") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(name, w)| {
                Some((
                    name.clone(),
                    w.get("events_per_sec")?.as_f64()?,
                    w.get("peak_rss_kb").and_then(Json::as_i64),
                ))
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// The `--check` gate: compare fresh measurements against a baseline
/// document and return one human-readable failure per breach — empty
/// means the gate passes. Fails when a workload's events/sec drops more
/// than [`MAX_DROP`] below the baseline, when its peak RSS exceeds
/// [`RSS_FACTOR`] × the baseline, or when the baseline document carries
/// no workload numbers at all (a gate that silently compares nothing
/// would report green forever).
pub fn check_against(baseline: &Json, results: &[BenchResult]) -> Vec<String> {
    let base = baseline_numbers(baseline);
    if base.is_empty() {
        return vec!["baseline document carries no workload measurements".to_string()];
    }
    let mut failures = Vec::new();
    for r in results {
        let Some((_, base_eps, base_rss)) = base.iter().find(|(name, _, _)| name == r.name) else {
            failures.push(format!(
                "workload '{}' missing from baseline document",
                r.name
            ));
            continue;
        };
        let floor = base_eps * (1.0 - MAX_DROP);
        if r.events_per_sec < floor {
            failures.push(format!(
                "{}: events/sec regressed {:.1}% ({:.0} vs baseline {:.0}, floor {:.0})",
                r.name,
                (1.0 - r.events_per_sec / base_eps) * 100.0,
                r.events_per_sec,
                base_eps,
                floor,
            ));
        }
        if let (Some(rss), Some(base_rss)) = (r.peak_rss_kb, base_rss) {
            let ceiling = *base_rss as f64 * RSS_FACTOR;
            if rss as f64 > ceiling {
                failures.push(format!(
                    "{}: peak RSS {} kB breaches ceiling {:.0} kB ({}x baseline {} kB)",
                    r.name, rss, ceiling, RSS_FACTOR, base_rss,
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &'static str, eps: f64, rss: Option<u64>) -> BenchResult {
        BenchResult {
            name,
            n: 100,
            runs: 3,
            ticks: 1_000,
            events: 50_000,
            messages: 40_000,
            wall_ms: 10.0,
            events_per_sec: eps,
            ticks_per_sec: eps / 50.0,
            peak_rss_kb: rss,
        }
    }

    fn doc_with_history(eps: f64, rss: i64) -> Json {
        Json::obj().with("schema", "bench_engine/v2").with(
            "history",
            Json::Arr(vec![history_entry(
                "abc1234",
                "quick",
                1,
                &[result("paper_baseline", eps, Some(rss as u64))],
            )]),
        )
    }

    #[test]
    fn five_percent_drop_passes_fifteen_percent_fails() {
        let baseline = doc_with_history(1.0e6, 100_000);
        let five = check_against(
            &baseline,
            &[result("paper_baseline", 0.95e6, Some(100_000))],
        );
        assert!(five.is_empty(), "5% drop must pass: {five:?}");
        let fifteen = check_against(
            &baseline,
            &[result("paper_baseline", 0.85e6, Some(100_000))],
        );
        assert_eq!(fifteen.len(), 1, "{fifteen:?}");
        assert!(fifteen[0].contains("events/sec regressed"), "{fifteen:?}");
        assert!(fifteen[0].contains("15.0%"), "{fifteen:?}");
    }

    #[test]
    fn rss_ceiling_breach_fails_independently_of_throughput() {
        let baseline = doc_with_history(1.0e6, 100_000);
        // Faster but fatter: 1.6x the baseline RSS breaches the 1.5x
        // ceiling even though throughput improved.
        let fails = check_against(&baseline, &[result("paper_baseline", 1.2e6, Some(160_000))]);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("peak RSS"), "{fails:?}");
        // At the ceiling exactly: passes.
        let ok = check_against(&baseline, &[result("paper_baseline", 1.2e6, Some(150_000))]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn check_compares_against_the_latest_history_entry() {
        // Two entries: an old slow one and the latest fast one. The
        // gate must use the latest — 0.95e6 is fine against 0.5e6 but a
        // 21% regression against 1.2e6.
        let doc = Json::obj().with(
            "history",
            Json::Arr(vec![
                history_entry(
                    "old0000",
                    "quick",
                    1,
                    &[result("paper_baseline", 0.5e6, None)],
                ),
                history_entry(
                    "new1111",
                    "quick",
                    1,
                    &[result("paper_baseline", 1.2e6, None)],
                ),
            ]),
        );
        let fails = check_against(&doc, &[result("paper_baseline", 0.95e6, None)]);
        assert_eq!(fails.len(), 1, "{fails:?}");
    }

    #[test]
    fn scale_entries_do_not_shadow_fixed_workload_baselines() {
        // A `--scale` run appends a history entry carrying only the
        // ladder's rungs. A later `--check` of the fixed workloads must
        // still find its baseline in the older entry — and a regression
        // against it must still fail.
        let doc = Json::obj().with(
            "history",
            Json::Arr(vec![
                history_entry(
                    "aaa0001",
                    "quick",
                    1,
                    &[result("paper_baseline", 1.0e6, Some(100_000))],
                ),
                history_entry(
                    "bbb0002",
                    "scale-quick",
                    1,
                    &[result("scale_10k", 2.0e6, Some(50_000))],
                ),
            ]),
        );
        let ok = check_against(&doc, &[result("paper_baseline", 0.95e6, Some(100_000))]);
        assert!(ok.is_empty(), "{ok:?}");
        let bad = check_against(&doc, &[result("paper_baseline", 0.5e6, Some(100_000))]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        // The scale rung itself is still reachable as a baseline.
        let rung = check_against(&doc, &[result("scale_10k", 1.9e6, Some(50_000))]);
        assert!(rung.is_empty(), "{rung:?}");
    }

    #[test]
    fn check_accepts_a_v1_document() {
        // A v1 BENCH_engine.json has no history array — the gate falls
        // back to its flat workloads measurements.
        let v1 = Json::parse(
            r#"{
              "schema": "bench_engine/v1",
              "mode": "quick",
              "workloads": [
                {"name": "paper_baseline", "events_per_sec": 1.0e6,
                 "ticks_per_sec": 2.0e4, "peak_rss_kb": 100000}
              ]
            }"#,
        )
        .expect("parses");
        let ok = check_against(&v1, &[result("paper_baseline", 0.95e6, Some(100_000))]);
        assert!(ok.is_empty(), "{ok:?}");
        let bad = check_against(&v1, &[result("paper_baseline", 0.5e6, Some(100_000))]);
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn empty_or_mismatched_baselines_fail_loudly() {
        let empty = Json::obj().with("schema", "bench_engine/v2");
        let fails = check_against(&empty, &[result("paper_baseline", 1.0e6, None)]);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("no workload"), "{fails:?}");
        let baseline = doc_with_history(1.0e6, 100_000);
        let fails = check_against(&baseline, &[result("renamed_workload", 1.0e6, None)]);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("missing from baseline"), "{fails:?}");
    }

    #[test]
    fn history_appends_and_migrates_v1() {
        let entry = |sha| history_entry(sha, "quick", 1, &[result("paper_baseline", 1.0e6, None)]);
        // No prior: history is just the new entry.
        let fresh = appended_history(None, entry("aaa0001"));
        assert_eq!(fresh.len(), 1);
        // Prior v2: entries accumulate in order.
        let doc = Json::obj()
            .with("schema", "bench_engine/v2")
            .with("history", Json::Arr(fresh.clone()))
            .render();
        let grown = appended_history(Some(&doc), entry("bbb0002"));
        assert_eq!(grown.len(), 2);
        assert_eq!(grown[1].get("sha").and_then(Json::as_str), Some("bbb0002"));
        // Prior v1: its single measurement migrates as a "pre-v2" entry.
        let v1 = r#"{
          "schema": "bench_engine/v1",
          "mode": "full",
          "workloads": [{"name": "paper_baseline", "events_per_sec": 2.0e6}]
        }"#;
        let migrated = appended_history(Some(v1), entry("ccc0003"));
        assert_eq!(migrated.len(), 2);
        assert_eq!(
            migrated[0].get("sha").and_then(Json::as_str),
            Some("pre-v2")
        );
        assert_eq!(migrated[0].get("mode").and_then(Json::as_str), Some("full"));
        // Garbage prior: history restarts rather than erroring.
        let restarted = appended_history(Some("not json"), entry("ddd0004"));
        assert_eq!(restarted.len(), 1);
    }

    #[test]
    fn git_sha_is_short_and_nonempty() {
        let sha = git_sha();
        assert!(!sha.is_empty());
        // In this repo it is a real short SHA; anywhere else the
        // "unknown" fallback still satisfies the trajectory key format.
        assert!(sha == "unknown" || sha.len() >= 7, "{sha}");
    }
}
