//! The multiplexed-query bench behind `repro mux`: one shared-substrate
//! run of a mixed workload versus the same queries executed one at a
//! time, on the same graph, values and churn realization.
//!
//! The headline is `queries_per_sec` — how fast the multiplexed engine
//! retires whole judged queries — and `speedup`, the wall-clock ratio
//! of the sequential baseline to the multiplexed run. The comparison is
//! only meaningful because the answers agree: the synchronous-round mux
//! engine makes every non-joined query's trajectory independent of its
//! co-residents, so its solo twin declares the byte-identical
//! `(value, time)` and receives the same ORACLE verdict. The bench
//! asserts exactly that before it reports any throughput number.
//!
//! `repro mux --json` appends one entry to the `BENCH_engine.json` v2
//! history (mode `mux-quick` / `mux-full`), so the multiplexing gain is
//! tracked per PR alongside the engine throughput trajectory.

use crate::engine_bench::BenchMode;
use pov_core::mux::{judged_mux, solo_twin, MuxJudged, WorkloadSpec};
use pov_core::pov_protocols::MuxPlan;
use pov_core::pov_sim::{ChurnPlan, Time};
use pov_core::pov_topology::generators::TopologyKind;
use pov_core::pov_topology::{analysis, HostId};
use pov_core::workload;
use pov_scenario::Json;
use std::time::Instant;

/// The wall-clock speedup `repro mux` must demonstrate before its
/// throughput claim counts: the sequential baseline must take at least
/// this many times longer than the multiplexed run. CI gates on the
/// printed `speedup:` line against this same floor.
pub const MIN_SPEEDUP: f64 = 3.0;

/// One fixed multiplexed workload: everything needed to reproduce the
/// run bit-for-bit.
#[derive(Clone, Copy, Debug)]
pub struct MuxBenchConfig {
    /// Host count of the random overlay.
    pub n: usize,
    /// Base queries in the workload.
    pub queries: usize,
    /// Fraction of hosts failing while the workload executes.
    pub churn_fraction: f64,
    /// Root seed (topology, values, workload, churn, engine).
    pub seed: u64,
}

impl MuxBenchConfig {
    /// The preset for one bench mode: CI scale or the full headline run.
    pub fn preset(mode: BenchMode) -> MuxBenchConfig {
        match mode {
            BenchMode::Quick => MuxBenchConfig {
                n: 4_000,
                queries: 200,
                churn_fraction: 0.05,
                seed: 2004,
            },
            BenchMode::Full => MuxBenchConfig {
                n: 6_000,
                queries: 500,
                churn_fraction: 0.05,
                seed: 2004,
            },
        }
    }
}

/// What one `repro mux` run measured.
#[derive(Clone, Debug)]
pub struct MuxBenchResult {
    /// Host count.
    pub n: usize,
    /// Queries executed (equals the workload's base-query count).
    pub queries: usize,
    /// Wall time of the multiplexed run (execute + judge), ms.
    pub mux_wall_ms: f64,
    /// Wall time of the sequential solo-twin baseline, ms.
    pub sequential_wall_ms: f64,
    /// `sequential_wall_ms / mux_wall_ms`.
    pub speedup: f64,
    /// Judged queries retired per second by the multiplexed run.
    pub queries_per_sec: f64,
    /// Raw engine messages of the multiplexed run.
    pub raw_messages: u64,
    /// Raw engine messages summed over the sequential runs.
    pub sequential_raw_messages: u64,
    /// Total payload items across all multiplexed queries.
    pub payload_items: u64,
    /// Queries that joined a live wave through the partial cache.
    pub cache_joins: u64,
    /// Fraction of multiplexed queries judged Single-Site Valid.
    pub valid_fraction: f64,
    /// Non-joined queries whose solo twin declared a *different*
    /// `(value, time)` or verdict — must be empty for the numbers to
    /// mean anything.
    pub mismatches: Vec<String>,
}

impl MuxBenchResult {
    /// Whether every non-joined query matched its solo twin exactly.
    pub fn answers_agree(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// The JSON block appended to the bench document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("n", self.n)
            .with("queries", self.queries)
            .with("mux_wall_ms", self.mux_wall_ms)
            .with("sequential_wall_ms", self.sequential_wall_ms)
            .with("speedup", self.speedup)
            .with("queries_per_sec", self.queries_per_sec)
            .with("raw_messages", self.raw_messages)
            .with("sequential_raw_messages", self.sequential_raw_messages)
            .with("payload_items", self.payload_items)
            .with("cache_joins", self.cache_joins)
            .with("valid_fraction", self.valid_fraction)
            .with("answers_agree", self.answers_agree())
    }
}

/// Run the preset workload for one bench mode.
pub fn run(mode: BenchMode) -> MuxBenchResult {
    run_config(&MuxBenchConfig::preset(mode))
}

/// Execute one multiplexed workload and its sequential baseline.
pub fn run_config(cfg: &MuxBenchConfig) -> MuxBenchResult {
    let graph = TopologyKind::Random.build(cfg.n, cfg.seed);
    let n = graph.num_hosts();
    let values = workload::paper_values(n, cfg.seed ^ 0x5eed_0001);
    let d_hat = analysis::diameter_estimate(&graph, 4, cfg.seed | 1) + 2;
    let spec = WorkloadSpec {
        queries: cfg.queries,
        span: 2 * d_hat as u64,
        d_hat,
        window: None,
        seed: cfg.seed ^ 0x006d_7578,
    };
    let queries = spec.generate(n);
    let horizon = queries.iter().map(|q| q.deadline()).max().unwrap_or(0) + 2;
    let plan = MuxPlan {
        churn: ChurnPlan::uniform_failures(
            n,
            (cfg.churn_fraction * n as f64).round() as usize,
            Time(1),
            Time(horizon),
            HostId(0),
            cfg.seed ^ 0xc4u64,
        ),
        partition: None,
        seed: cfg.seed ^ 0x51b,
    };

    // Both sides are timed best-of-N (the `repro bench` discipline:
    // scheduler noise on runs this short otherwise flips the CI gate),
    // with identical-answer asserts across repetitions — the runs are
    // deterministic, so any divergence is a bug, not jitter.
    const TIMING_REPS: usize = 2;

    // The multiplexed side: all queries over one simulation, judged.
    let mut mux_wall_ms = f64::INFINITY;
    let mut best: Option<(Vec<MuxJudged>, _)> = None;
    for _ in 0..TIMING_REPS {
        let start = Instant::now();
        let (judged, out) = judged_mux(&graph, &values, &queries, &plan);
        mux_wall_ms = mux_wall_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
        if let Some((prev, _)) = &best {
            assert_eq!(
                prev.iter()
                    .map(|j| (j.value, j.declared_at))
                    .collect::<Vec<_>>(),
                judged
                    .iter()
                    .map(|j| (j.value, j.declared_at))
                    .collect::<Vec<_>>(),
                "multiplexed reruns must be deterministic"
            );
        }
        best = Some((judged, out));
    }
    let (judged, out) = best.expect("at least one timing rep");

    // The sequential baseline: every query alone over the *same*
    // environment, timed end to end (execute + judge, like the
    // multiplexed side).
    let mut sequential_wall_ms = f64::INFINITY;
    let mut twins: Vec<MuxJudged> = Vec::new();
    for _ in 0..TIMING_REPS {
        let start = Instant::now();
        twins = queries
            .iter()
            .map(|q| solo_twin(&graph, &values, q, &plan))
            .collect();
        sequential_wall_ms = sequential_wall_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
    }
    let sequential_raw_messages = sequential_raw(&graph, &values, &queries, &plan);

    // Equivalence first, throughput second: a non-joined query's
    // multiplexed trajectory is independent of its co-residents, so its
    // solo twin must agree byte for byte. Joined queries inherit a live
    // wave's answer and are reported, not compared.
    let mut mismatches = Vec::new();
    for (j, twin) in judged.iter().zip(&twins) {
        if j.joined {
            continue;
        }
        if (j.value, j.declared_at) != (twin.value, twin.declared_at) {
            mismatches.push(format!(
                "query {}: mux declared {:?} at {:?}, solo {:?} at {:?}",
                j.query.id.0, j.value, j.declared_at, twin.value, twin.declared_at
            ));
        } else if j.is_valid() != twin.is_valid() {
            mismatches.push(format!(
                "query {}: mux verdict {} vs solo {}",
                j.query.id.0,
                j.is_valid(),
                twin.is_valid()
            ));
        }
    }

    let valid = judged.iter().filter(|j| j.is_valid()).count();
    MuxBenchResult {
        n,
        queries: queries.len(),
        mux_wall_ms,
        sequential_wall_ms,
        speedup: sequential_wall_ms / mux_wall_ms.max(f64::EPSILON),
        queries_per_sec: queries.len() as f64 / (mux_wall_ms / 1_000.0).max(f64::EPSILON),
        raw_messages: out.raw_messages,
        sequential_raw_messages,
        payload_items: out.payload_items,
        cache_joins: out.cache_joins,
        valid_fraction: valid as f64 / queries.len().max(1) as f64,
        mismatches,
    }
}

/// Raw engine messages summed over per-query solo runs — the
/// communication the shared substrate saves, measured outside the timed
/// sections so the accounting never skews the wall-clock comparison.
fn sequential_raw(
    graph: &pov_core::pov_topology::Graph,
    values: &[u64],
    queries: &[pov_core::pov_protocols::MuxQuery],
    plan: &MuxPlan,
) -> u64 {
    queries
        .iter()
        .map(|q| {
            let (_, out) = judged_mux(graph, values, std::slice::from_ref(q), plan);
            out.raw_messages
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MuxBenchConfig {
        MuxBenchConfig {
            n: 300,
            queries: 24,
            churn_fraction: 0.05,
            seed: 7,
        }
    }

    #[test]
    fn bench_answers_agree_and_share_messages() {
        let r = run_config(&tiny());
        assert_eq!(r.queries, 24);
        assert!(r.answers_agree(), "mismatches: {:?}", r.mismatches);
        // Sharing is the whole point: overlapping waves ride the same
        // engine messages, so the multiplexed run sends strictly fewer.
        assert!(
            r.raw_messages < r.sequential_raw_messages,
            "mux {} vs sequential {}",
            r.raw_messages,
            r.sequential_raw_messages
        );
        assert!(r.payload_items > 0);
        assert!(r.valid_fraction > 0.5, "got {}", r.valid_fraction);
    }

    #[test]
    fn bench_json_carries_the_headline_fields() {
        let r = run_config(&tiny());
        let json = r.to_json().render();
        for key in ["queries_per_sec", "speedup", "answers_agree"] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    #[ignore]
    fn profile_breakdown() {
        use pov_core::mux::judge_workload;
        use pov_core::pov_protocols::run_mux;
        let cfg = MuxBenchConfig::preset(BenchMode::Quick);
        let graph = TopologyKind::Random.build(cfg.n, cfg.seed);
        let n = graph.num_hosts();
        let values = workload::paper_values(n, cfg.seed ^ 0x5eed_0001);
        let d_hat = analysis::diameter_estimate(&graph, 4, cfg.seed | 1) + 2;
        let spec = WorkloadSpec {
            queries: cfg.queries,
            span: 2 * d_hat as u64,
            d_hat,
            window: None,
            seed: cfg.seed ^ 0x006d_7578,
        };
        let queries = spec.generate(n);
        let horizon = queries.iter().map(|q| q.deadline()).max().unwrap_or(0) + 2;
        let plan = MuxPlan {
            churn: ChurnPlan::uniform_failures(
                n,
                (cfg.churn_fraction * n as f64).round() as usize,
                Time(1),
                Time(horizon),
                HostId(0),
                cfg.seed ^ 0xc4u64,
            ),
            partition: None,
            seed: cfg.seed ^ 0x51b,
        };
        for take in [25, 50, 100, 200] {
            let qs = &queries[..take];
            let t0 = Instant::now();
            let out = run_mux(&graph, &values, qs, &plan);
            eprintln!(
                "q={take}: run_mux {:?} ({} raw msgs, {} payload, horizon {})",
                t0.elapsed(),
                out.raw_messages,
                out.payload_items,
                out.horizon.ticks()
            );
        }
        let t1 = Instant::now();
        let out = run_mux(&graph, &values, &queries, &plan);
        let judged = judge_workload(&graph, &values, &queries, &out);
        eprintln!("judge: {:?} ({} queries)", t1.elapsed(), judged.len());
    }

    #[test]
    fn presets_scale_with_mode() {
        let q = MuxBenchConfig::preset(BenchMode::Quick);
        let f = MuxBenchConfig::preset(BenchMode::Full);
        assert!(q.n >= 4_000 && q.queries >= 200, "quick preset too small");
        assert!(f.n > q.n && f.queries > q.queries);
    }
}
