//! Shared scale presets for the benchmark harness.
//!
//! Every paper experiment exists in two sizes:
//!
//! * [`Scale::Quick`] — minutes-not-hours defaults used by `repro`
//!   without flags and by the Criterion benches (topologies around a few
//!   thousand hosts; same sweep *shapes* as the paper);
//! * [`Scale::Paper`] — the full §6 sizes (Gnutella 39,046; Random /
//!   Power-law 40K; Grid 100×100), selected with `repro --paper`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine_bench;
pub mod flight;
pub mod mux;
pub mod soak;
pub mod trajectory;

use pov_core::experiments::{
    ablation, adversary, fig06, fig10, fig11, fig12, fig13, overlay, price, validity,
};
use pov_core::pov_protocols::Aggregate;
use pov_core::pov_topology::generators::TopologyKind;

/// Experiment size preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down sweeps (default).
    Quick,
    /// The paper's §6 sizes.
    Paper,
}

impl Scale {
    /// Fig 6 configuration.
    pub fn fig06(self) -> fig06::Config {
        match self {
            Scale::Paper => fig06::Config::paper(),
            Scale::Quick => fig06::Config {
                set_sizes: vec![1 << 10, 1 << 12],
                c_values: vec![1, 2, 4, 8, 12, 16],
                trials: 10,
                seed: 2004,
            },
        }
    }

    /// Fig 7 (count on Gnutella) configuration.
    pub fn fig07(self) -> validity::Config {
        match self {
            Scale::Paper => validity::Config::paper_fig07(),
            Scale::Quick => validity::Config {
                trials: 5,
                ..validity::Config::smoke(TopologyKind::Gnutella, Aggregate::Count, 4_000)
            },
        }
    }

    /// Fig 8 (sum on Gnutella) configuration.
    pub fn fig08(self) -> validity::Config {
        match self {
            Scale::Paper => validity::Config::paper_fig08(),
            Scale::Quick => validity::Config {
                trials: 5,
                seed: 8,
                ..validity::Config::smoke(TopologyKind::Gnutella, Aggregate::Sum, 4_000)
            },
        }
    }

    /// Fig 9 (count on Grid) configuration.
    pub fn fig09(self) -> validity::Config {
        match self {
            Scale::Paper => validity::Config::paper_fig09(),
            Scale::Quick => validity::Config {
                trials: 5,
                seed: 9,
                ..validity::Config::smoke(TopologyKind::Grid, Aggregate::Count, 2_500)
            },
        }
    }

    /// Fig 10 configuration.
    pub fn fig10(self) -> fig10::Config {
        match self {
            Scale::Paper => fig10::Config::paper(),
            Scale::Quick => fig10::Config {
                sizes: vec![1_000, 2_000, 4_000],
                d_hat_multipliers: vec![1, 2, 4],
                gnutella_n: Some(4_000),
                c: 8,
                seed: 10,
            },
        }
    }

    /// Fig 11 configuration.
    pub fn fig11(self) -> fig11::Config {
        match self {
            Scale::Paper => fig11::Config::paper(),
            Scale::Quick => fig11::Config {
                sides: vec![30, 40, 50],
                c: 8,
                seed: 11,
            },
        }
    }

    /// Fig 12 configuration.
    pub fn fig12(self) -> fig12::Config {
        match self {
            Scale::Paper => fig12::Config::paper(),
            Scale::Quick => fig12::Config {
                topologies: vec![(TopologyKind::PowerLaw, 4_000), (TopologyKind::Grid, 2_500)],
                c: 8,
                seed: 12,
            },
        }
    }

    /// Fig 13 configuration.
    pub fn fig13(self) -> fig13::Config {
        match self {
            Scale::Paper => fig13::Config::paper(),
            Scale::Quick => fig13::Config {
                sizes: vec![1_000, 2_000, 4_000],
                d_hat_multipliers: vec![1, 2, 4],
                profile_topologies: vec![
                    (TopologyKind::Gnutella, 4_000),
                    (TopologyKind::Random, 4_000),
                    (TopologyKind::PowerLaw, 4_000),
                    (TopologyKind::Grid, 2_500),
                ],
                c: 8,
                seed: 13,
            },
        }
    }

    /// Price-table configuration.
    pub fn price(self) -> price::Config {
        match self {
            Scale::Paper => price::Config::paper(),
            Scale::Quick => price::Config {
                topologies: vec![
                    (TopologyKind::Gnutella, 4_000),
                    (TopologyKind::Random, 4_000),
                    (TopologyKind::PowerLaw, 4_000),
                    (TopologyKind::Grid, 2_500),
                ],
                aggregates: vec![Aggregate::Count, Aggregate::Sum, Aggregate::Min],
                churn_fraction: 0.10,
                trials: 5,
                c: 8,
                seed: 77,
            },
        }
    }

    /// WILDFIRE-optimization ablation configuration.
    pub fn ablation(self) -> ablation::Config {
        match self {
            Scale::Paper => ablation::Config::paper(),
            Scale::Quick => ablation::Config {
                n: 4_000,
                ..ablation::Config::paper()
            },
        }
    }

    /// Adversary (sketch-targeted vs uniform churn) configuration.
    pub fn adversary(self) -> adversary::Config {
        match self {
            Scale::Paper => adversary::Config::paper(),
            Scale::Quick => adversary::Config::smoke(),
        }
    }

    /// Overlay maintenance (static vs maintained at equal churn)
    /// configuration.
    pub fn overlay(self) -> overlay::Config {
        match self {
            Scale::Paper => overlay::Config::paper(),
            Scale::Quick => overlay::Config::smoke(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_scales_materialize() {
        for s in [Scale::Quick, Scale::Paper] {
            assert!(!s.fig06().set_sizes.is_empty());
            assert!(!s.fig07().r_values.is_empty());
            assert!(!s.fig10().sizes.is_empty());
            assert!(!s.fig11().sides.is_empty());
            assert!(!s.fig12().topologies.is_empty());
            assert!(!s.fig13().sizes.is_empty());
            assert!(!s.price().topologies.is_empty());
            assert!(s.ablation().n > 0);
        }
    }

    #[test]
    fn paper_scale_matches_section_6() {
        assert_eq!(Scale::Paper.fig07().n, 39_046);
        assert_eq!(Scale::Paper.fig09().n, 10_000);
        assert_eq!(Scale::Paper.fig10().sizes.last(), Some(&40_000));
        assert_eq!(Scale::Paper.fig11().sides.last(), Some(&100));
    }
}
