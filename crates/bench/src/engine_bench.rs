//! `repro bench` — a deterministic wall-clock harness for the engine
//! hot path.
//!
//! Three fixed workloads mirror the scenario library's regimes
//! (`paper_baseline`, `churn_plus_partition`, `adversarial_sketch`) but
//! run straight through [`runner::run_all`], so what is measured is the
//! simulator itself: event-queue throughput, delivery fan-out, churn
//! and partition checks — not the oracle or the report aggregation.
//! Every workload is a pure function of its hard-coded seeds: the
//! *event counts* are asserted stable (`runs`, `events`, `messages`
//! never change unless engine semantics change), only the wall-clock
//! numbers vary per machine.
//!
//! The harness emits `BENCH_engine.json` (schema documented in the
//! README) carrying, per workload:
//!
//! * `events` / `events_per_sec` — engine-loop dispatches (fails, joins,
//!   deliveries, timers, churn polls) and their wall-clock rate;
//! * `ticks` / `ticks_per_sec` — simulated virtual ticks and their rate;
//! * `peak_rss_kb` — the process peak RSS (`VmHWM`) after the workload,
//!   a monotone proxy for the engine's high-water memory;
//!
//! plus the **recorded pre-refactor baseline** (`baseline` object): the
//! same workloads measured on the reference machine with the PR-5
//! pre-refactor engine (`BinaryHeap` event queue, per-run graph clones,
//! per-wave buffer allocations). The `speedup_events_per_sec` ratios
//! make the perf trajectory of this and every future PR explicit;
//! absolute numbers shift with hardware, the *ratio between two runs on
//! one machine* is the signal.

use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{runner, AdversarySpec, Aggregate, ProtocolKind, RunPlan};
use pov_core::pov_sim::{ChurnPlan, PartitionPlan, Time};
use pov_core::pov_topology::generators::TopologyKind;
use pov_core::pov_topology::{analysis, HostId};
use pov_core::workload;
use pov_scenario::Json;
use std::time::Instant;

/// One workload's measured result.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Workload name (`paper_baseline`, `churn_plus_partition`,
    /// `adversarial_sketch`).
    pub name: &'static str,
    /// Hosts in the topology.
    pub n: usize,
    /// Simulations executed (seeds × protocols).
    pub runs: usize,
    /// Virtual ticks simulated across all runs.
    pub ticks: u64,
    /// Engine events dispatched across all runs (deterministic).
    pub events: u64,
    /// Messages sent across all runs (deterministic).
    pub messages: u64,
    /// Wall-clock milliseconds for the whole workload.
    pub wall_ms: f64,
    /// `events / wall seconds`.
    pub events_per_sec: f64,
    /// `ticks / wall seconds`.
    pub ticks_per_sec: f64,
    /// Peak RSS (`VmHWM`, kB) observed after the workload; `None` when
    /// `/proc/self/status` is unavailable (non-Linux).
    pub peak_rss_kb: Option<u64>,
}

/// Scale preset for the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchMode {
    /// CI-sized: a few seconds end to end.
    Quick,
    /// Default: large enough that per-event costs dominate setup.
    Full,
}

impl BenchMode {
    /// The mode's name as it appears in the JSON document.
    pub fn label(self) -> &'static str {
        match self {
            BenchMode::Quick => "quick",
            BenchMode::Full => "full",
        }
    }
}

/// The recorded pre-refactor baseline (events/sec per workload), in
/// workload order. Measured on the reference machine at quick/full
/// scale with the pre-refactor engine — `BinaryHeap<Event>` queue,
/// `graph.clone()` per run, fresh per-wave buffers — immediately before
/// the hot-path refactor landed, using this exact harness.
pub fn recorded_baseline(mode: BenchMode) -> [(&'static str, f64); 3] {
    match mode {
        BenchMode::Quick => [
            ("paper_baseline", 2.58e6),
            ("churn_plus_partition", 3.17e6),
            ("adversarial_sketch", 2.57e6),
        ],
        BenchMode::Full => [
            ("paper_baseline", 1.59e6),
            ("churn_plus_partition", 2.11e6),
            ("adversarial_sketch", 1.71e6),
        ],
    }
}

pub(crate) struct Workload {
    pub(crate) name: &'static str,
    n: usize,
    seeds: u64,
    pub(crate) protocols: Vec<ProtocolKind>,
    regime: Regime,
}

enum Regime {
    Static,
    ChurnPlusPartition,
    AdversarialSketch,
}

pub(crate) fn workloads(mode: BenchMode) -> Vec<Workload> {
    let (n1, n2, n3, seeds) = match mode {
        BenchMode::Quick => (1_000, 800, 800, 3),
        BenchMode::Full => (6_000, 4_000, 4_000, 5),
    };
    let wf = ProtocolKind::Wildfire(WildfireOpts::default());
    vec![
        Workload {
            name: "paper_baseline",
            n: n1,
            seeds,
            protocols: vec![wf],
            regime: Regime::Static,
        },
        Workload {
            name: "churn_plus_partition",
            n: n2,
            seeds,
            protocols: vec![wf, ProtocolKind::SpanningTree],
            regime: Regime::ChurnPlusPartition,
        },
        Workload {
            name: "adversarial_sketch",
            n: n3,
            seeds,
            protocols: vec![wf],
            regime: Regime::AdversarialSketch,
        },
    ]
}

/// A bench workload's setup products (topology, values, base plan) —
/// built once outside any timed region, and shared with the counter
/// replay and the flight-recorder replay so both instrument the exact
/// simulations the harness times.
pub(crate) struct BenchSetup {
    pub(crate) graph: pov_core::pov_topology::Graph,
    pub(crate) values: Vec<u64>,
    pub(crate) base: RunPlan,
    pub(crate) n: usize,
    pub(crate) deadline: u64,
    pub(crate) hq: HostId,
}

pub(crate) fn setup(w: &Workload) -> BenchSetup {
    let graph = TopologyKind::Random.build(w.n, 1);
    let n = graph.num_hosts();
    let values = workload::paper_values(n, 0x5eed_0001);
    let d_hat = analysis::diameter_estimate(&graph, 4, 1) + 2;
    let hq = HostId(0);
    let base = RunPlan::query(Aggregate::Count)
        .d_hat(d_hat)
        .from_host(hq)
        .protocols(w.protocols.iter().copied());
    let deadline = base.deadline();
    BenchSetup {
        graph,
        values,
        base,
        n,
        deadline,
        hq,
    }
}

/// The plan for one seed of a workload (pure in its arguments — what
/// makes the per-seed work freely distributable across threads).
pub(crate) fn seed_plan(
    w: &Workload,
    base: &RunPlan,
    graph: &pov_core::pov_topology::Graph,
    n: usize,
    deadline: u64,
    hq: HostId,
    seed: u64,
) -> RunPlan {
    let mut plan = base.clone().seed(seed);
    match w.regime {
        Regime::Static => {}
        Regime::ChurnPlusPartition => {
            plan = plan
                .churn(ChurnPlan::uniform_failures(
                    n,
                    n / 10,
                    Time(0),
                    Time(deadline),
                    hq,
                    seed ^ 0x00c0_ffee,
                ))
                .partition(
                    PartitionPlan::split_bfs(graph, HostId(n as u32 / 3), 0.3)
                        .window(Time(deadline / 10), Time(deadline * 2 / 3)),
                );
        }
        Regime::AdversarialSketch => {
            plan = plan.adversary(AdversarySpec::fm_maxima(
                4,
                n / 20,
                Time(1),
                Time(deadline * 3 / 4),
            ));
        }
    }
    plan
}

/// Run one workload on `threads` workers and measure it. Seeds fan out
/// across the workers; each seed's counts land in its own slot, so the
/// summed `events` / `messages` / `runs` are identical for every thread
/// count — only the wall-clock rates change.
fn run_workload(w: &Workload, threads: usize) -> BenchResult {
    // Setup (topology, values, diameter probe) happens outside the
    // timed region: the harness measures the event loop, not graph
    // construction.
    let BenchSetup {
        graph,
        values,
        base,
        n,
        deadline,
        hq,
    } = setup(w);

    let seeds: Vec<u64> = (0..w.seeds).collect();
    let mut slots: Vec<(u64, u64, usize)> = vec![(0, 0, 0); seeds.len()];
    let chunk = seeds.len().div_ceil(threads.max(1));
    let start = Instant::now();
    std::thread::scope(|scope| {
        let (graph, values, base, w) = (&graph, &values, &base, &w);
        for (seed_chunk, slot_chunk) in seeds.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (&seed, slot) in seed_chunk.iter().zip(slot_chunk) {
                    let plan = seed_plan(w, base, graph, n, deadline, hq, seed);
                    for (_, out) in runner::run_all(graph, values, &plan) {
                        slot.0 += out.metrics.events_dispatched;
                        slot.1 += out.metrics.messages_sent;
                        slot.2 += 1;
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let (mut events, mut messages, mut runs) = (0u64, 0u64, 0usize);
    for (e, m, r) in slots {
        events += e;
        messages += m;
        runs += r;
    }
    let wall_s = wall.as_secs_f64().max(1e-9);
    let ticks = (deadline + 2) * runs as u64;
    BenchResult {
        name: w.name,
        n,
        runs,
        ticks,
        events,
        messages,
        wall_ms: wall_s * 1e3,
        events_per_sec: events as f64 / wall_s,
        ticks_per_sec: ticks as f64 / wall_s,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Timed repetitions per workload: the reported rates are the *best*
/// of these. Quick workloads finish in tens of milliseconds, where
/// scheduler noise alone swings a single measurement by 20%+ — far past
/// the `--check` gate's 10% budget. Noise is one-sided (a run can only
/// be slowed down, never sped up), so best-of-N converges on the true
/// rate; event counts are identical across repetitions by construction.
/// Quick mode takes 7 so a same-machine gate holds even on busy shared
/// runners; full-scale workloads run seconds each, where 2 suffice.
fn repeats(mode: BenchMode) -> usize {
    match mode {
        BenchMode::Quick => 7,
        BenchMode::Full => 2,
    }
}

/// Execute all three workloads at `mode` scale, single-threaded.
pub fn run(mode: BenchMode) -> Vec<BenchResult> {
    run_threaded(mode, 1)
}

/// Execute all three workloads at `mode` scale on `threads` workers.
/// Event counts are identical for every thread count; the wall-clock
/// rates (best of `repeats(mode)` timed repetitions) measure the engine
/// under parallel load.
pub fn run_threaded(mode: BenchMode, threads: usize) -> Vec<BenchResult> {
    workloads(mode)
        .iter()
        .map(|w| {
            (0..repeats(mode))
                .map(|_| run_workload(w, threads))
                .reduce(|best, next| {
                    assert_eq!(
                        best.events, next.events,
                        "{}: nondeterministic rerun",
                        w.name
                    );
                    if next.events_per_sec > best.events_per_sec {
                        next
                    } else {
                        best
                    }
                })
                .expect("at least one repetition")
        })
        .collect()
}

// -------------------------------------------------------------------- scale

/// The `repro bench --scale` ladder: host counts per rung, ascending —
/// `VmHWM` (the RSS probe) is process-monotone, so each rung's reading
/// reflects its own high-water mark only if nothing larger ran first.
/// Quick stops at 10⁵ for CI; full adds the million-host rung the
/// engine's streaming-topology and active-set work exists to serve.
pub fn scale_sizes(mode: BenchMode) -> Vec<(&'static str, usize)> {
    let mut sizes = vec![("scale_10k", 10_000), ("scale_100k", 100_000)];
    if mode == BenchMode::Full {
        sizes.push(("scale_1m", 1_000_000));
    }
    sizes
}

/// Per-host RSS budget for the scale ladder, in KiB: topology CSR,
/// per-host protocol state, alive bookkeeping, and the in-flight event
/// queue together may not average more than this over the rung's hosts.
pub const SCALE_RSS_PER_HOST_KB: f64 = 1.0;

/// Fixed allowance on top of the per-host budget, in kB: the process
/// baseline (binary, allocator arenas, and — `VmHWM` being monotone —
/// the smaller rungs that ran earlier). Dominates only the small rungs,
/// where per-host asymptotics are not yet the story; at 10⁶ hosts it is
/// ~3% of the ceiling.
pub const SCALE_RSS_ALLOWANCE_KB: u64 = 32 * 1024;

/// One rung of the ladder: a single-seed SPANNINGTREE flood +
/// convergecast on a random topology — every host activates, classifies
/// its neighbourhood, and reports, so per-host state, delivery fan-out,
/// and timer pressure all scale with `n` while event counts stay a pure
/// function of the rung.
fn scale_workload(name: &'static str, n: usize) -> Workload {
    Workload {
        name,
        n,
        seeds: 1,
        protocols: vec![ProtocolKind::SpanningTree],
        regime: Regime::Static,
    }
}

/// Execute the scale ladder, ascending. Rates are best-of-3 below the
/// million-host rung; that rung runs once — it is seconds long, where
/// scheduler noise is already amortized, and repeating it would double
/// the walltime of every CI scale job for a number the `--check` gate
/// never reads (the ladder is gated on its RSS ceiling, not throughput).
pub fn run_scale(mode: BenchMode) -> Vec<BenchResult> {
    scale_sizes(mode)
        .iter()
        .map(|&(name, n)| {
            let w = scale_workload(name, n);
            let reps = if n >= 1_000_000 { 1 } else { 3 };
            (0..reps)
                .map(|_| run_workload(&w, 1))
                .reduce(|best, next| {
                    assert_eq!(best.events, next.events, "{name}: nondeterministic rerun");
                    if next.events_per_sec > best.events_per_sec {
                        next
                    } else {
                        best
                    }
                })
                .expect("at least one repetition")
        })
        .collect()
}

/// The scale ladder's memory gate: one failure per rung whose peak RSS
/// exceeds `SCALE_RSS_ALLOWANCE_KB + SCALE_RSS_PER_HOST_KB × n`. Rungs
/// without an RSS reading (non-Linux) are skipped — the gate runs in CI
/// on Linux, where the reading always exists.
pub fn scale_failures(results: &[BenchResult]) -> Vec<String> {
    results
        .iter()
        .filter_map(|r| {
            let rss = r.peak_rss_kb?;
            let ceiling = SCALE_RSS_ALLOWANCE_KB as f64 + SCALE_RSS_PER_HOST_KB * r.n as f64;
            (rss as f64 > ceiling).then(|| {
                format!(
                    "{}: peak RSS {} kB breaches ceiling {:.0} kB \
                     ({:.2} KiB/host at n = {}; budget {} KiB/host + {} kB base)",
                    r.name,
                    rss,
                    ceiling,
                    rss as f64 / r.n as f64,
                    r.n,
                    SCALE_RSS_PER_HOST_KB,
                    SCALE_RSS_ALLOWANCE_KB,
                )
            })
        })
        .collect()
}

/// Deterministic engine counters for every workload, from an
/// *instrumented replay* of the exact simulations the harness times:
/// same seeds, same plans, single-threaded, with a
/// [`pov_telemetry::TickRecorder`] attached. Never taken during the
/// timed repetitions — recording there would perturb the rates being
/// measured. Each entry is `(workload name, counters object)` for the
/// opt-in `counters` section of `BENCH_engine.json`
/// (`repro bench --counters`).
pub fn counters(mode: BenchMode) -> Vec<(&'static str, Json)> {
    use pov_core::pov_protocols::runner;
    use pov_telemetry::TickRecorder;
    workloads(mode)
        .iter()
        .map(|w| {
            let s = setup(w);
            let mut runs = 0u64;
            let mut active_ticks = 0u64;
            let (mut dispatched, mut delivered, mut dropped, mut sent) = (0u64, 0u64, 0u64, 0u64);
            let (mut fails, mut joins, mut timers) = (0u64, 0u64, 0u64);
            let mut peak_frontier = 0u32;
            let mut peak_queue_depth = 0u64;
            for seed in 0..w.seeds {
                let plan = seed_plan(w, &s.base, &s.graph, s.n, s.deadline, s.hq, seed);
                for &kind in &w.protocols {
                    let mut rec = TickRecorder::new();
                    let _ = runner::run_with(kind, &s.graph, &s.values, &plan, Some(&mut rec));
                    let series = rec.finish();
                    runs += 1;
                    active_ticks += series.ticks.len() as u64;
                    dispatched += series.dispatched();
                    delivered += series.delivered();
                    sent += series.sent();
                    peak_frontier = peak_frontier.max(series.peak_frontier());
                    for t in &series.ticks {
                        dropped += t.dropped;
                        fails += t.fails;
                        joins += t.joins;
                        timers += t.timers;
                        peak_queue_depth = peak_queue_depth.max(t.queue_depth);
                    }
                }
            }
            let obj = Json::obj()
                .with("runs", runs)
                .with("active_ticks", active_ticks)
                .with("dispatched", dispatched)
                .with("delivered", delivered)
                .with("dropped", dropped)
                .with("sent", sent)
                .with("fails", fails)
                .with("joins", joins)
                .with("timers", timers)
                .with("peak_frontier", peak_frontier)
                .with("peak_queue_depth", peak_queue_depth);
            (w.name, obj)
        })
        .collect()
}

/// The `counters` object for `BENCH_engine.json`: one block per
/// workload, keyed by name.
pub fn counters_json(mode: BenchMode) -> Json {
    let mut obj = Json::obj();
    for (name, block) in counters(mode) {
        obj = obj.with(name, block);
    }
    obj
}

/// Telemetry-overhead budget enforced by [`Overhead::failure`]: with a
/// [`NullSink`](pov_core::pov_sim::NullSink) attached — every hook
/// firing, every sample aggregated, nothing recorded — the engine may
/// lose at most this fraction of its telemetry-*disabled* throughput.
/// The disabled path does strictly less work than the null-sink path,
/// so this also bounds the cost of the `Option` test the disabled hot
/// path pays.
pub const MAX_OVERHEAD: f64 = 0.03;

/// One telemetry-overhead measurement: events/sec for two
/// telemetry-disabled passes and one null-sink pass over the same
/// workload, taken from the cleanest repetition (see
/// [`measure_overhead`]). Two disabled passes make the run its own
/// noise floor — the gate compares the null-sink rate against the
/// *faster* disabled pass, so within a repetition noise can only make
/// the check stricter, not looser.
#[derive(Clone, Copy, Debug)]
pub struct Overhead {
    /// Events/sec of the first telemetry-disabled pass.
    pub disabled_a: f64,
    /// Events/sec of the second telemetry-disabled pass.
    pub disabled_b: f64,
    /// Events/sec with a `NullSink` attached.
    pub null_sink: f64,
}

impl Overhead {
    /// Fraction of disabled throughput the null-sink pass lost
    /// (negative when it measured faster — pure noise).
    pub fn overhead_fraction(&self) -> f64 {
        1.0 - self.null_sink / self.disabled_a.max(self.disabled_b)
    }

    /// `Some(message)` when the overhead exceeds [`MAX_OVERHEAD`].
    pub fn failure(&self) -> Option<String> {
        let f = self.overhead_fraction();
        (f > MAX_OVERHEAD).then(|| {
            format!(
                "telemetry hooks cost {:.1}% of disabled throughput \
                 (null-sink {:.0} events/sec vs disabled {:.0}; budget {:.0}%)",
                f * 100.0,
                self.null_sink,
                self.disabled_a.max(self.disabled_b),
                MAX_OVERHEAD * 100.0,
            )
        })
    }
}

/// Measure telemetry overhead on the `paper_baseline` workload,
/// single-threaded. The three passes interleave inside each repetition
/// (disabled, disabled, null-sink) so load drift hits all of them
/// alike, and the repetition with the *lowest* paired overhead wins:
/// the hooks' cost is deterministic constant work that shows up in
/// every repetition, while a scheduling burst during the null-sink
/// pass only inflates some — so the minimum is the cleanest estimate
/// of intrinsic cost, exactly the best-of-N reasoning the wall-clock
/// bench itself uses. Event counts are asserted identical across every
/// pass — a sink must never change what the engine does, only observe
/// it.
pub fn measure_overhead(mode: BenchMode) -> Overhead {
    use pov_core::pov_protocols::runner;
    use pov_core::pov_sim::NullSink;
    let w = &workloads(mode)[0];
    let s = setup(w);
    let timed_pass = |null: bool| -> (u64, f64) {
        let start = Instant::now();
        let mut events = 0u64;
        for seed in 0..w.seeds {
            let plan = seed_plan(w, &s.base, &s.graph, s.n, s.deadline, s.hq, seed);
            for &kind in &w.protocols {
                let mut sink = NullSink;
                let out = runner::run_with(
                    kind,
                    &s.graph,
                    &s.values,
                    &plan,
                    if null { Some(&mut sink) } else { None },
                );
                events += out.metrics.events_dispatched;
            }
        }
        let wall_s = start.elapsed().as_secs_f64().max(1e-9);
        (events, events as f64 / wall_s)
    };
    let mut best: Option<Overhead> = None;
    let mut events_seen = None;
    for _ in 0..repeats(mode) {
        let mut rates = [0f64; 3];
        for (slot, null) in [(0usize, false), (1, false), (2, true)] {
            let (events, eps) = timed_pass(null);
            let expected = *events_seen.get_or_insert(events);
            assert_eq!(
                expected, events,
                "telemetry sink changed engine behaviour on {}",
                w.name
            );
            rates[slot] = eps;
        }
        let rep = Overhead {
            disabled_a: rates[0],
            disabled_b: rates[1],
            null_sink: rates[2],
        };
        if best.is_none_or(|b| rep.overhead_fraction() < b.overhead_fraction()) {
            best = Some(rep);
        }
    }
    best.expect("repeats(mode) >= 1")
}

/// The `BENCH_engine.json` document (schema `bench_engine/v2`): mode
/// and thread count, per-workload measurements, the recorded
/// pre-refactor baseline with the speedup ratio of each workload
/// against it, and the per-PR `history` trajectory (one entry per
/// `--json` run, keyed by git SHA — build it with
/// [`crate::trajectory::appended_history`]).
pub fn to_json(
    mode: BenchMode,
    threads: usize,
    results: &[BenchResult],
    history: Vec<Json>,
) -> Json {
    let baseline = recorded_baseline(mode);
    let mut base_obj = Json::obj();
    for &(name, eps) in &baseline {
        base_obj = base_obj.with(name, Json::obj().with("events_per_sec", eps));
    }
    Json::obj()
        .with("schema", "bench_engine/v2")
        .with("mode", mode.label())
        .with("threads", threads)
        .with(
            "workloads",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        let base = baseline
                            .iter()
                            .find(|&&(name, _)| name == r.name)
                            .map(|&(_, eps)| eps);
                        Json::obj()
                            .with("name", r.name)
                            .with("n", r.n)
                            .with("runs", r.runs)
                            .with("ticks", r.ticks)
                            .with("events", r.events)
                            .with("messages", r.messages)
                            .with("wall_ms", r.wall_ms)
                            .with("events_per_sec", r.events_per_sec)
                            .with("ticks_per_sec", r.ticks_per_sec)
                            .with("peak_rss_kb", r.peak_rss_kb)
                            .with(
                                "speedup_events_per_sec",
                                base.map(|eps| r.events_per_sec / eps),
                            )
                    })
                    .collect(),
            ),
        )
        .with(
            "baseline",
            Json::obj()
                .with(
                    "recorded",
                    "pre-refactor engine (BinaryHeap queue, per-run graph clones), \
                     reference machine, release build",
                )
                .with("workloads", base_obj),
        )
        .with("history", Json::Arr(history))
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`), the
/// cheapest portable-enough RSS proxy; `None` off Linux.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_is_deterministic_in_event_counts() {
        let a = run(BenchMode::Quick);
        let b = run(BenchMode::Quick);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.events, y.events, "{}", x.name);
            assert_eq!(x.messages, y.messages, "{}", x.name);
            assert_eq!(x.ticks, y.ticks, "{}", x.name);
            assert!(x.events > 0 && x.runs > 0, "{}", x.name);
        }
    }

    #[test]
    fn threaded_run_keeps_event_counts() {
        // The --threads fan-out may only change wall-clock rates — the
        // per-seed slot sums must match the sequential run exactly.
        let one = run_threaded(BenchMode::Quick, 1);
        let four = run_threaded(BenchMode::Quick, 4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.events, b.events, "{}", a.name);
            assert_eq!(a.messages, b.messages, "{}", a.name);
            assert_eq!((a.runs, a.ticks), (b.runs, b.ticks), "{}", a.name);
        }
    }

    #[test]
    fn scale_ladder_ascends_and_quick_fits_ci() {
        let quick = scale_sizes(BenchMode::Quick);
        let full = scale_sizes(BenchMode::Full);
        assert_eq!(quick, full[..quick.len()], "quick is a prefix of full");
        assert_eq!(full.last(), Some(&("scale_1m", 1_000_000)));
        for w in full.windows(2) {
            assert!(
                w[0].1 < w[1].1,
                "sizes must ascend (VmHWM is process-monotone): {w:?}"
            );
        }
        assert!(quick.iter().all(|&(_, n)| n <= 100_000));
    }

    #[test]
    fn scale_rung_is_deterministic_in_event_counts() {
        // A miniature rung (the real ladder starts at 10⁴ — too slow
        // for a debug-build unit test) through the same machinery.
        let w = scale_workload("scale_test", 1_500);
        let a = run_workload(&w, 1);
        let b = run_workload(&w, 1);
        assert_eq!(a.runs, 1);
        assert_eq!(
            (a.events, a.messages, a.ticks),
            (b.events, b.messages, b.ticks)
        );
        assert!(
            a.events > 0 && a.messages as usize > w.n,
            "every host reports"
        );
    }

    #[test]
    fn scale_gate_fires_only_past_the_per_host_ceiling() {
        let rung = |n: usize, rss: Option<u64>| BenchResult {
            name: "scale_test",
            n,
            runs: 1,
            ticks: 100,
            events: 1_000,
            messages: 900,
            wall_ms: 1.0,
            events_per_sec: 1e6,
            ticks_per_sec: 1e5,
            peak_rss_kb: rss,
        };
        // Within budget: allowance + 1 KiB/host.
        let ceiling = SCALE_RSS_ALLOWANCE_KB + 1_000_000;
        assert!(scale_failures(&[rung(1_000_000, Some(ceiling))]).is_empty());
        let fails = scale_failures(&[rung(1_000_000, Some(ceiling + 1))]);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("breaches ceiling"), "{fails:?}");
        assert!(fails[0].contains("KiB/host"), "{fails:?}");
        // No reading (non-Linux): skipped, not failed.
        assert!(scale_failures(&[rung(1_000_000, None)]).is_empty());
    }

    #[test]
    fn counters_are_deterministic_and_match_the_uninstrumented_engine() {
        use pov_core::pov_protocols::runner;
        let first = counters(BenchMode::Quick);
        assert_eq!(first.len(), 3);
        let names: Vec<&str> = first.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "paper_baseline",
                "churn_plus_partition",
                "adversarial_sketch"
            ]
        );
        // A second replay produces byte-identical blocks.
        let mut rendered = Json::obj();
        for (name, block) in first.iter().cloned() {
            rendered = rendered.with(name, block);
        }
        assert_eq!(
            rendered.render(),
            counters_json(BenchMode::Quick).render(),
            "counter replay is nondeterministic"
        );
        // The instrumented replay reports exactly what the engine's own
        // metrics report for the same plans — recording must not change
        // (or miscount) the run.
        let w = &workloads(BenchMode::Quick)[0];
        let s = setup(w);
        let (mut events, mut messages) = (0u64, 0u64);
        for seed in 0..w.seeds {
            let plan = seed_plan(w, &s.base, &s.graph, s.n, s.deadline, s.hq, seed);
            for (_, out) in runner::run_all(&s.graph, &s.values, &plan) {
                events += out.metrics.events_dispatched;
                messages += out.metrics.messages_sent;
            }
        }
        let block = &first[0].1;
        assert_eq!(
            block.get("dispatched").and_then(Json::as_i64),
            Some(events as i64)
        );
        assert_eq!(
            block.get("sent").and_then(Json::as_i64),
            Some(messages as i64)
        );
        assert!(block.get("active_ticks").and_then(Json::as_i64) > Some(0));
    }

    #[test]
    fn overhead_passes_agree_on_event_counts_and_measure_sane_rates() {
        let o = measure_overhead(BenchMode::Quick);
        assert!(o.disabled_a > 0.0 && o.disabled_b > 0.0 && o.null_sink > 0.0);
        // Asserting the 3% budget here would flake on a loaded test
        // machine; CI enforces it via `repro bench --overhead` on a
        // release build. Bound it loosely so a gross hook regression
        // still fails the suite.
        assert!(o.overhead_fraction() < 0.5, "{o:?}");
    }

    #[test]
    fn overhead_failure_fires_only_past_the_budget() {
        let ok = Overhead {
            disabled_a: 1.0e6,
            disabled_b: 0.98e6,
            null_sink: 0.98e6,
        };
        assert!(ok.failure().is_none(), "2% overhead is within budget");
        let bad = Overhead {
            disabled_a: 1.0e6,
            disabled_b: 0.99e6,
            null_sink: 0.9e6,
        };
        let msg = bad.failure().expect("10% overhead breaches the budget");
        assert!(msg.contains("10.0%"), "{msg}");
        // Noise-faster null-sink passes are fine, never a failure.
        let fast = Overhead {
            disabled_a: 1.0e6,
            disabled_b: 1.0e6,
            null_sink: 1.1e6,
        };
        assert!(fast.overhead_fraction() < 0.0);
        assert!(fast.failure().is_none());
    }

    #[test]
    fn json_schema_has_all_sections() {
        let results = run(BenchMode::Quick);
        let history = vec![crate::trajectory::history_entry(
            "abc1234",
            BenchMode::Quick.label(),
            1,
            &results,
        )];
        let doc = to_json(BenchMode::Quick, 1, &results, history).render();
        for needle in [
            "\"schema\": \"bench_engine/v2\"",
            "\"mode\": \"quick\"",
            "\"threads\": 1",
            "\"workloads\"",
            "\"events_per_sec\"",
            "\"baseline\"",
            "\"speedup_events_per_sec\"",
            "\"paper_baseline\"",
            "\"churn_plus_partition\"",
            "\"adversarial_sketch\"",
            "\"history\"",
            "\"sha\": \"abc1234\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
        // The document round-trips through the reader the --check gate
        // uses.
        let parsed = Json::parse(&doc).expect("own document parses");
        assert_eq!(
            parsed
                .get("history")
                .and_then(Json::as_arr)
                .map(|h| h.len()),
            Some(1)
        );
    }
}
