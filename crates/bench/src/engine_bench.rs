//! `repro bench` — a deterministic wall-clock harness for the engine
//! hot path.
//!
//! Three fixed workloads mirror the scenario library's regimes
//! (`paper_baseline`, `churn_plus_partition`, `adversarial_sketch`) but
//! run straight through [`runner::run_all`], so what is measured is the
//! simulator itself: event-queue throughput, delivery fan-out, churn
//! and partition checks — not the oracle or the report aggregation.
//! Every workload is a pure function of its hard-coded seeds: the
//! *event counts* are asserted stable (`runs`, `events`, `messages`
//! never change unless engine semantics change), only the wall-clock
//! numbers vary per machine.
//!
//! The harness emits `BENCH_engine.json` (schema documented in the
//! README) carrying, per workload:
//!
//! * `events` / `events_per_sec` — engine-loop dispatches (fails, joins,
//!   deliveries, timers, churn polls) and their wall-clock rate;
//! * `ticks` / `ticks_per_sec` — simulated virtual ticks and their rate;
//! * `peak_rss_kb` — the process peak RSS (`VmHWM`) after the workload,
//!   a monotone proxy for the engine's high-water memory;
//!
//! plus the **recorded pre-refactor baseline** (`baseline` object): the
//! same workloads measured on the reference machine with the PR-5
//! pre-refactor engine (`BinaryHeap` event queue, per-run graph clones,
//! per-wave buffer allocations). The `speedup_events_per_sec` ratios
//! make the perf trajectory of this and every future PR explicit;
//! absolute numbers shift with hardware, the *ratio between two runs on
//! one machine* is the signal.

use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{runner, AdversarySpec, Aggregate, ProtocolKind, RunPlan};
use pov_core::pov_sim::{ChurnPlan, PartitionPlan, Time};
use pov_core::pov_topology::generators::TopologyKind;
use pov_core::pov_topology::{analysis, HostId};
use pov_core::workload;
use pov_scenario::Json;
use std::time::Instant;

/// One workload's measured result.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Workload name (`paper_baseline`, `churn_plus_partition`,
    /// `adversarial_sketch`).
    pub name: &'static str,
    /// Hosts in the topology.
    pub n: usize,
    /// Simulations executed (seeds × protocols).
    pub runs: usize,
    /// Virtual ticks simulated across all runs.
    pub ticks: u64,
    /// Engine events dispatched across all runs (deterministic).
    pub events: u64,
    /// Messages sent across all runs (deterministic).
    pub messages: u64,
    /// Wall-clock milliseconds for the whole workload.
    pub wall_ms: f64,
    /// `events / wall seconds`.
    pub events_per_sec: f64,
    /// `ticks / wall seconds`.
    pub ticks_per_sec: f64,
    /// Peak RSS (`VmHWM`, kB) observed after the workload; `None` when
    /// `/proc/self/status` is unavailable (non-Linux).
    pub peak_rss_kb: Option<u64>,
}

/// Scale preset for the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchMode {
    /// CI-sized: a few seconds end to end.
    Quick,
    /// Default: large enough that per-event costs dominate setup.
    Full,
}

impl BenchMode {
    /// The mode's name as it appears in the JSON document.
    pub fn label(self) -> &'static str {
        match self {
            BenchMode::Quick => "quick",
            BenchMode::Full => "full",
        }
    }
}

/// The recorded pre-refactor baseline (events/sec per workload), in
/// workload order. Measured on the reference machine at quick/full
/// scale with the pre-refactor engine — `BinaryHeap<Event>` queue,
/// `graph.clone()` per run, fresh per-wave buffers — immediately before
/// the hot-path refactor landed, using this exact harness.
pub fn recorded_baseline(mode: BenchMode) -> [(&'static str, f64); 3] {
    match mode {
        BenchMode::Quick => [
            ("paper_baseline", 2.58e6),
            ("churn_plus_partition", 3.17e6),
            ("adversarial_sketch", 2.57e6),
        ],
        BenchMode::Full => [
            ("paper_baseline", 1.59e6),
            ("churn_plus_partition", 2.11e6),
            ("adversarial_sketch", 1.71e6),
        ],
    }
}

struct Workload {
    name: &'static str,
    n: usize,
    seeds: u64,
    protocols: Vec<ProtocolKind>,
    regime: Regime,
}

enum Regime {
    Static,
    ChurnPlusPartition,
    AdversarialSketch,
}

fn workloads(mode: BenchMode) -> Vec<Workload> {
    let (n1, n2, n3, seeds) = match mode {
        BenchMode::Quick => (1_000, 800, 800, 3),
        BenchMode::Full => (6_000, 4_000, 4_000, 5),
    };
    let wf = ProtocolKind::Wildfire(WildfireOpts::default());
    vec![
        Workload {
            name: "paper_baseline",
            n: n1,
            seeds,
            protocols: vec![wf],
            regime: Regime::Static,
        },
        Workload {
            name: "churn_plus_partition",
            n: n2,
            seeds,
            protocols: vec![wf, ProtocolKind::SpanningTree],
            regime: Regime::ChurnPlusPartition,
        },
        Workload {
            name: "adversarial_sketch",
            n: n3,
            seeds,
            protocols: vec![wf],
            regime: Regime::AdversarialSketch,
        },
    ]
}

/// The plan for one seed of a workload (pure in its arguments — what
/// makes the per-seed work freely distributable across threads).
fn seed_plan(
    w: &Workload,
    base: &RunPlan,
    graph: &pov_core::pov_topology::Graph,
    n: usize,
    deadline: u64,
    hq: HostId,
    seed: u64,
) -> RunPlan {
    let mut plan = base.clone().seed(seed);
    match w.regime {
        Regime::Static => {}
        Regime::ChurnPlusPartition => {
            plan = plan
                .churn(ChurnPlan::uniform_failures(
                    n,
                    n / 10,
                    Time(0),
                    Time(deadline),
                    hq,
                    seed ^ 0x00c0_ffee,
                ))
                .partition(
                    PartitionPlan::split_bfs(graph, HostId(n as u32 / 3), 0.3)
                        .window(Time(deadline / 10), Time(deadline * 2 / 3)),
                );
        }
        Regime::AdversarialSketch => {
            plan = plan.adversary(AdversarySpec::fm_maxima(
                4,
                n / 20,
                Time(1),
                Time(deadline * 3 / 4),
            ));
        }
    }
    plan
}

/// Run one workload on `threads` workers and measure it. Seeds fan out
/// across the workers; each seed's counts land in its own slot, so the
/// summed `events` / `messages` / `runs` are identical for every thread
/// count — only the wall-clock rates change.
fn run_workload(w: &Workload, threads: usize) -> BenchResult {
    // Setup (topology, values, diameter probe) happens outside the
    // timed region: the harness measures the event loop, not graph
    // construction.
    let graph = TopologyKind::Random.build(w.n, 1);
    let n = graph.num_hosts();
    let values = workload::paper_values(n, 0x5eed_0001);
    let d_hat = analysis::diameter_estimate(&graph, 4, 1) + 2;
    let hq = HostId(0);
    let base = RunPlan::query(Aggregate::Count)
        .d_hat(d_hat)
        .from_host(hq)
        .protocols(w.protocols.iter().copied());
    let deadline = base.deadline();

    let seeds: Vec<u64> = (0..w.seeds).collect();
    let mut slots: Vec<(u64, u64, usize)> = vec![(0, 0, 0); seeds.len()];
    let chunk = seeds.len().div_ceil(threads.max(1));
    let start = Instant::now();
    std::thread::scope(|scope| {
        let (graph, values, base, w) = (&graph, &values, &base, &w);
        for (seed_chunk, slot_chunk) in seeds.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (&seed, slot) in seed_chunk.iter().zip(slot_chunk) {
                    let plan = seed_plan(w, base, graph, n, deadline, hq, seed);
                    for (_, out) in runner::run_all(graph, values, &plan) {
                        slot.0 += out.metrics.events_dispatched;
                        slot.1 += out.metrics.messages_sent;
                        slot.2 += 1;
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let (mut events, mut messages, mut runs) = (0u64, 0u64, 0usize);
    for (e, m, r) in slots {
        events += e;
        messages += m;
        runs += r;
    }
    let wall_s = wall.as_secs_f64().max(1e-9);
    let ticks = (deadline + 2) * runs as u64;
    BenchResult {
        name: w.name,
        n,
        runs,
        ticks,
        events,
        messages,
        wall_ms: wall_s * 1e3,
        events_per_sec: events as f64 / wall_s,
        ticks_per_sec: ticks as f64 / wall_s,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Timed repetitions per workload: the reported rates are the *best*
/// of these. Quick workloads finish in tens of milliseconds, where
/// scheduler noise alone swings a single measurement by 20%+ — far past
/// the `--check` gate's 10% budget. Noise is one-sided (a run can only
/// be slowed down, never sped up), so best-of-N converges on the true
/// rate; event counts are identical across repetitions by construction.
/// Quick mode takes 7 so a same-machine gate holds even on busy shared
/// runners; full-scale workloads run seconds each, where 2 suffice.
fn repeats(mode: BenchMode) -> usize {
    match mode {
        BenchMode::Quick => 7,
        BenchMode::Full => 2,
    }
}

/// Execute all three workloads at `mode` scale, single-threaded.
pub fn run(mode: BenchMode) -> Vec<BenchResult> {
    run_threaded(mode, 1)
}

/// Execute all three workloads at `mode` scale on `threads` workers.
/// Event counts are identical for every thread count; the wall-clock
/// rates (best of `repeats(mode)` timed repetitions) measure the engine
/// under parallel load.
pub fn run_threaded(mode: BenchMode, threads: usize) -> Vec<BenchResult> {
    workloads(mode)
        .iter()
        .map(|w| {
            (0..repeats(mode))
                .map(|_| run_workload(w, threads))
                .reduce(|best, next| {
                    assert_eq!(
                        best.events, next.events,
                        "{}: nondeterministic rerun",
                        w.name
                    );
                    if next.events_per_sec > best.events_per_sec {
                        next
                    } else {
                        best
                    }
                })
                .expect("at least one repetition")
        })
        .collect()
}

/// The `BENCH_engine.json` document (schema `bench_engine/v2`): mode
/// and thread count, per-workload measurements, the recorded
/// pre-refactor baseline with the speedup ratio of each workload
/// against it, and the per-PR `history` trajectory (one entry per
/// `--json` run, keyed by git SHA — build it with
/// [`crate::trajectory::appended_history`]).
pub fn to_json(
    mode: BenchMode,
    threads: usize,
    results: &[BenchResult],
    history: Vec<Json>,
) -> Json {
    let baseline = recorded_baseline(mode);
    let mut base_obj = Json::obj();
    for &(name, eps) in &baseline {
        base_obj = base_obj.with(name, Json::obj().with("events_per_sec", eps));
    }
    Json::obj()
        .with("schema", "bench_engine/v2")
        .with("mode", mode.label())
        .with("threads", threads)
        .with(
            "workloads",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        let base = baseline
                            .iter()
                            .find(|&&(name, _)| name == r.name)
                            .map(|&(_, eps)| eps);
                        Json::obj()
                            .with("name", r.name)
                            .with("n", r.n)
                            .with("runs", r.runs)
                            .with("ticks", r.ticks)
                            .with("events", r.events)
                            .with("messages", r.messages)
                            .with("wall_ms", r.wall_ms)
                            .with("events_per_sec", r.events_per_sec)
                            .with("ticks_per_sec", r.ticks_per_sec)
                            .with("peak_rss_kb", r.peak_rss_kb)
                            .with(
                                "speedup_events_per_sec",
                                base.map(|eps| r.events_per_sec / eps),
                            )
                    })
                    .collect(),
            ),
        )
        .with(
            "baseline",
            Json::obj()
                .with(
                    "recorded",
                    "pre-refactor engine (BinaryHeap queue, per-run graph clones), \
                     reference machine, release build",
                )
                .with("workloads", base_obj),
        )
        .with("history", Json::Arr(history))
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`), the
/// cheapest portable-enough RSS proxy; `None` off Linux.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_is_deterministic_in_event_counts() {
        let a = run(BenchMode::Quick);
        let b = run(BenchMode::Quick);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.events, y.events, "{}", x.name);
            assert_eq!(x.messages, y.messages, "{}", x.name);
            assert_eq!(x.ticks, y.ticks, "{}", x.name);
            assert!(x.events > 0 && x.runs > 0, "{}", x.name);
        }
    }

    #[test]
    fn threaded_run_keeps_event_counts() {
        // The --threads fan-out may only change wall-clock rates — the
        // per-seed slot sums must match the sequential run exactly.
        let one = run_threaded(BenchMode::Quick, 1);
        let four = run_threaded(BenchMode::Quick, 4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.events, b.events, "{}", a.name);
            assert_eq!(a.messages, b.messages, "{}", a.name);
            assert_eq!((a.runs, a.ticks), (b.runs, b.ticks), "{}", a.name);
        }
    }

    #[test]
    fn json_schema_has_all_sections() {
        let results = run(BenchMode::Quick);
        let history = vec![crate::trajectory::history_entry(
            "abc1234",
            BenchMode::Quick.label(),
            1,
            &results,
        )];
        let doc = to_json(BenchMode::Quick, 1, &results, history).render();
        for needle in [
            "\"schema\": \"bench_engine/v2\"",
            "\"mode\": \"quick\"",
            "\"threads\": 1",
            "\"workloads\"",
            "\"events_per_sec\"",
            "\"baseline\"",
            "\"speedup_events_per_sec\"",
            "\"paper_baseline\"",
            "\"churn_plus_partition\"",
            "\"adversarial_sketch\"",
            "\"history\"",
            "\"sha\": \"abc1234\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
        // The document round-trips through the reader the --check gate
        // uses.
        let parsed = Json::parse(&doc).expect("own document parses");
        assert_eq!(
            parsed
                .get("history")
                .and_then(Json::as_arr)
                .map(|h| h.len()),
            Some(1)
        );
    }
}
