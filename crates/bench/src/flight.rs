//! Post-hoc flight-recorder dumps for breached gates.
//!
//! When `repro soak` trips a limit or `repro bench --check` flags a
//! regression, a throughput number alone is a dead end — the question
//! is what the engine was *doing* when it got slow. This module
//! re-runs the breaching workload deterministically (same seeds, same
//! plans, so the replay IS the run that breached) with a
//! [`FlightRecorder`] attached, and writes its last-N-ticks ring next
//! to the failure as `FLIGHT_<workload>.jsonl`, stamped with
//! [`pov_telemetry::FLIGHT_SCHEMA`].
//!
//! The recorder is never attached to the measured run itself: the
//! timed repetitions stay telemetry-free, and the replay only happens
//! on the failure path, where wall-clock no longer matters.

use crate::engine_bench::{self, BenchMode};
use crate::soak;
use pov_core::judged::window_local_plans;
use pov_core::pov_protocols::runner;
use pov_telemetry::FlightRecorder;
use std::path::{Path, PathBuf};

/// Ring size of breach replays, in active ticks. Matches the
/// `[telemetry]` scenario section's `flight_window` default: enough to
/// span several continuous windows of context before the end of the
/// run, small enough that a dump stays a few tens of kilobytes.
pub const WINDOW: usize = 256;

/// The distinct workload names a failure list points at, in first-seen
/// order. Failure strings from `soak::assert_limits` and
/// `trajectory::check_against` lead with `<workload>: ...`; lines that
/// carry no such prefix (e.g. an empty-baseline complaint) are skipped
/// — there is nothing to replay for them.
pub fn breached_workloads(failures: &[String]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for f in failures {
        let Some((name, _)) = f.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') || names.iter().any(|n| n == name) {
            continue;
        }
        names.push(name.to_string());
    }
    names
}

/// Every failure string for `name`, joined — the `reason` field of the
/// dump header.
fn reason_for(failures: &[String], name: &str) -> String {
    let prefix = format!("{name}:");
    failures
        .iter()
        .filter(|f| f.starts_with(&prefix))
        .map(String::as_str)
        .collect::<Vec<_>>()
        .join("; ")
}

/// Replay the named soak workload with a [`FlightRecorder`] and return
/// the dump text, or `None` when no such workload exists at `mode`.
/// The replay drives the identical window-local plans `judged_plan`
/// executed (minus the oracle, which never touches the engine), so the
/// retained ring shows the final windows of the breaching simulation.
/// Retained tick keys are window-local.
pub fn replay_soak(mode: BenchMode, name: &str, reason: &str) -> Option<String> {
    let workloads = soak::workloads(mode);
    let w = workloads.iter().find(|w| w.name == name)?;
    let s = soak::setup(w);
    let mut rec = FlightRecorder::new(WINDOW);
    for (_, local) in window_local_plans(&s.graph, &s.plan) {
        let _ = runner::run_with(s.protocol, &s.graph, &s.values, &local, Some(&mut rec));
    }
    Some(rec.dump(name, reason))
}

/// Replay the named bench workload's first seed with a
/// [`FlightRecorder`] and return the dump text, or `None` when no such
/// workload exists at `mode`. One seed suffices: every seed runs the
/// same regime, and the ring only retains the last [`WINDOW`] ticks
/// anyway.
pub fn replay_bench(mode: BenchMode, name: &str, reason: &str) -> Option<String> {
    let workloads = engine_bench::workloads(mode);
    let w = workloads.iter().find(|w| w.name == name)?;
    let s = engine_bench::setup(w);
    let plan = engine_bench::seed_plan(w, &s.base, &s.graph, s.n, s.deadline, s.hq, 0);
    let mut rec = FlightRecorder::new(WINDOW);
    for &kind in &w.protocols {
        let _ = runner::run_with(kind, &s.graph, &s.values, &plan, Some(&mut rec));
    }
    Some(rec.dump(name, reason))
}

fn write_dumps(
    failures: &[String],
    dir: &Path,
    replay: impl Fn(&str, &str) -> Option<String>,
) -> Vec<PathBuf> {
    let mut written = Vec::new();
    for name in breached_workloads(failures) {
        let Some(dump) = replay(&name, &reason_for(failures, &name)) else {
            continue;
        };
        let path = dir.join(format!("FLIGHT_{name}.jsonl"));
        match std::fs::write(&path, dump) {
            Ok(()) => written.push(path),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
    written
}

/// Replay every soak workload named by `failures` and write one
/// `FLIGHT_<workload>.jsonl` per breach into `dir`. Returns the paths
/// written.
pub fn write_soak_dumps(mode: BenchMode, failures: &[String], dir: &Path) -> Vec<PathBuf> {
    write_dumps(failures, dir, |name, reason| {
        replay_soak(mode, name, reason)
    })
}

/// Replay every bench workload named by `failures` and write one
/// `FLIGHT_<workload>.jsonl` per breach into `dir`. Returns the paths
/// written.
pub fn write_bench_dumps(mode: BenchMode, failures: &[String], dir: &Path) -> Vec<PathBuf> {
    write_dumps(failures, dir, |name, reason| {
        replay_bench(mode, name, reason)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soak::{assert_limits, SoakResult};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pov_flight_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn breach_parsing_dedups_and_skips_non_workload_failures() {
        let failures = vec![
            "lifecycle_wildfire: throughput collapsed to 10 events/sec (floor 50000)".to_string(),
            "lifecycle_wildfire: peak RSS 9999999 kB breaches the 1048576 kB ceiling".to_string(),
            "baseline document carries no workload measurements".to_string(),
            "workload 'ghost' missing from baseline document".to_string(),
            "double_dip_wildfire: throughput collapsed to 9 events/sec (floor 50000)".to_string(),
        ];
        assert_eq!(
            breached_workloads(&failures),
            ["lifecycle_wildfire", "double_dip_wildfire"]
        );
        let reason = reason_for(&failures, "lifecycle_wildfire");
        assert!(reason.contains("throughput collapsed") && reason.contains("; "));
    }

    #[test]
    fn soak_floor_breach_produces_a_schema_stamped_dump() {
        // Force the quick soak's throughput floor: a result measuring
        // 1 event/sec sits far below `limits(Quick).0`, so the limit
        // check reports a breach — exactly what a collapsed run would.
        let breached = SoakResult {
            name: "lifecycle_wildfire",
            n: 300,
            horizon_ticks: 10_000,
            windows: 500,
            judged_windows: 500,
            events: 1_000_000,
            messages: 900_000,
            declared_fraction: 1.0,
            wall_ms: 1.0e9,
            events_per_sec: 1.0,
            ticks_per_sec: 1.0,
            peak_rss_kb: Some(50_000),
        };
        let failures = assert_limits(&[breached], BenchMode::Quick);
        assert_eq!(failures.len(), 1, "{failures:?}");

        let dir = temp_dir("soak");
        let paths = write_soak_dumps(BenchMode::Quick, &failures, &dir);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].ends_with("FLIGHT_lifecycle_wildfire.jsonl"));

        let dump = std::fs::read_to_string(&paths[0]).expect("dump readable");
        let lines: Vec<&str> = dump.lines().collect();
        assert!(
            lines.len() > 1 && lines.len() <= 1 + WINDOW,
            "header plus at most WINDOW retained ticks, got {}",
            lines.len()
        );
        let header = lines[0];
        assert!(
            header.contains("\"schema\": \"flight_recorder/v1\""),
            "{header}"
        );
        assert!(
            header.contains("\"workload\": \"lifecycle_wildfire\""),
            "{header}"
        );
        assert!(header.contains("throughput collapsed"), "{header}");
        assert!(header.contains("\"num_hosts\": 300"), "{header}");
        for line in &lines[1..] {
            assert!(line.starts_with("{\"t\": "), "malformed tick line: {line}");
            assert!(line.ends_with('}'), "malformed tick line: {line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_replay_covers_known_workloads_only() {
        assert!(replay_bench(BenchMode::Quick, "no_such_workload", "r").is_none());
        let dump = replay_bench(
            BenchMode::Quick,
            "adversarial_sketch",
            "synthetic regression",
        )
        .expect("known workload replays");
        let header = dump.lines().next().expect("header line");
        assert!(
            header.contains("\"schema\": \"flight_recorder/v1\""),
            "{header}"
        );
        assert!(
            header.contains("\"workload\": \"adversarial_sketch\""),
            "{header}"
        );
        assert!(
            header.contains("\"reason\": \"synthetic regression\""),
            "{header}"
        );
    }
}
