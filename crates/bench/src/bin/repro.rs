//! `repro` — regenerate every table and figure of the paper's §6, and
//! run declarative scenario batches.
//!
//! ```sh
//! repro                      # all experiments at quick scale
//! repro --paper              # all experiments at the paper's full sizes
//! repro fig6 fig13b          # a subset
//! repro --json out.json      # also emit every experiment's rows as JSON
//! repro list                 # what exists
//!
//! repro scenario scenarios/smoke.scn             # one scenario batch
//! repro scenario a.scn b.scn --threads 8         # parallel batch runner
//! repro scenario a.scn --json report.json        # machine-readable report
//!
//! repro bench --quick --threads 4                # parallel engine bench
//! repro bench --quick --check BASELINE.json      # perf regression gate
//! repro bench --overhead --quick                 # telemetry overhead gate
//! repro soak --quick                             # long-horizon endurance run
//!
//! repro trace scenarios/smoke.scn                # deterministic telemetry traces
//! repro trace a.scn --out traces --format chrome # Perfetto-loadable trace only
//! ```

use pov_bench::engine_bench::{self, BenchMode};
use pov_bench::{flight, mux, soak, trajectory, Scale};
use pov_core::experiments::{
    ablation, adversary, ext_accuracy, fig06, fig10, fig11, fig12, fig13, overlay, price, validity,
};
use pov_core::report::Table;
use pov_scenario::{run_batch_sharded, table_to_json, trace_batch_sharded, Json, Scenario};
use pov_telemetry::export;
use std::path::{Path, PathBuf};
use std::time::Instant;

const ALL: &[&str] = &[
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13a",
    "fig13b",
    "price",
    "ablation",
    "ext",
    "adversary",
    "overlay",
];

const USAGE: &str = "\
repro — regenerate the tables and figures of the paper's §6

USAGE:
    repro [--paper] [--json PATH] [EXPERIMENT]...
    repro scenario FILE... [--threads N] [--shard-delivery N] [--json PATH]
    repro trace FILE... [--threads N] [--shard-delivery N] [--out DIR] [--format jsonl|chrome|summary]
    repro bench [--quick] [--threads N] [--json PATH] [--check BASELINE] [--counters]
    repro bench --overhead [--quick]
    repro bench --scale [--quick] [--json PATH]
    repro mux [--quick] [--json PATH]
    repro soak [--quick] [--json PATH]

SUBCOMMANDS:
    (none)         run the paper's §6 experiments (EXPERIMENT subset, or all)
    list           print the experiment names
    scenario       run declarative .scn scenario batches and print reports
    trace          re-run scenario batches with deterministic telemetry traces
    bench          engine micro-benchmarks, perf gates, and the scale ladder
    mux            multiplexed-query bench: one shared-substrate workload vs
                   the same queries run sequentially (queries/sec + speedup)
    soak           long-horizon endurance run with events/sec and RSS limits
    overlay        one experiment by name: maintained-overlay vs frozen-graph
                   validity/cost comparison (`repro overlay`)
    adversary      one experiment by name: adaptive sketch-targeting attacker
                   vs oblivious churn at equal budget (`repro adversary`)
                   — any name from `repro list` runs the same way

    Unknown subcommands are treated as experiment names and rejected with
    a non-zero exit and a pointer to `repro list`.

OPTIONS:
    --paper        run experiments at the paper's full §6 sizes (default: quick scale)
    --threads N    worker threads for the scenario batch runner, the trace
                   runner, or the engine bench (default: 1)
    --shard-delivery N
                   `repro scenario` / `repro trace` only: shard each tick's
                   in-simulation delivery batch across N worker threads
                   (deterministic — output is byte-identical for any N; see
                   docs/SCALING.md). Composes with '--threads', which
                   parallelizes across cells rather than within a simulation
    --json PATH    write results as JSON to PATH (experiment rows, scenario reports,
                   or the bench document — default BENCH_engine.json for `bench`;
                   the bench document's per-PR history grows by one entry per run)
    --check PATH   `repro bench` only: compare this run against the baseline
                   document at PATH and exit non-zero on a >10% events/sec drop
                   or an RSS-ceiling breach (see docs/BENCHMARKING.md); on breach,
                   a FLIGHT_<workload>.jsonl flight-recorder dump is written
    --counters     `repro bench` only: add deterministic per-workload engine
                   counter blocks (from an instrumented replay of the same
                   simulations) to the JSON document
    --overhead     `repro bench` only: measure telemetry overhead — two
                   telemetry-disabled passes vs a null-sink pass — and exit
                   non-zero past the 3% budget (see docs/OBSERVABILITY.md)
    --scale        `repro bench` only: run the host-count ladder (10⁴, 10⁵,
                   and — without '--quick' — 10⁶ hosts) instead of the fixed
                   workloads, record events/sec and peak RSS per rung into
                   the JSON history, and exit non-zero when a rung breaches
                   the 1 KiB/host RSS ceiling (see docs/SCALING.md)
    --out DIR      `repro trace` only: directory for trace files (default: .)
    --format F     `repro trace` only: emit one exporter's file — jsonl,
                   chrome (trace-event JSON; open in Perfetto), or summary
                   (default: all three)
    --quick        run `repro bench` / `repro mux` / `repro soak` at CI scale
                   instead of full
    -h, --help     print this help

ARGUMENTS:
    EXPERIMENT     subset to run (default: all); `repro list` prints them
    FILE           scenario spec (.scn) — see the README's \"Scenario files\" section";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Split `args` into flag values and positional arguments.
struct Opts {
    paper: bool,
    quick: bool,
    counters: bool,
    overhead: bool,
    scale: bool,
    threads: Option<usize>,
    shard_delivery: Option<usize>,
    json: Option<String>,
    check: Option<String>,
    out: Option<String>,
    format: Option<String>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        paper: false,
        quick: false,
        counters: false,
        overhead: false,
        scale: false,
        threads: None,
        shard_delivery: None,
        json: None,
        check: None,
        out: None,
        format: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper" => opts.paper = true,
            "--quick" => opts.quick = true,
            "--counters" => opts.counters = true,
            "--overhead" => opts.overhead = true,
            "--scale" => opts.scale = true,
            "--threads" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("'--threads' expects a value (e.g. --threads 8)"));
                opts.threads = Some(parse_threads("--threads", v));
            }
            "--shard-delivery" => {
                let v = it.next().unwrap_or_else(|| {
                    fail("'--shard-delivery' expects a thread count (e.g. --shard-delivery 4)")
                });
                opts.shard_delivery = Some(parse_threads("--shard-delivery", v));
            }
            "--json" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("'--json' expects a file path (e.g. --json out.json)"));
                opts.json = Some(v.clone());
            }
            "--check" => {
                let v = it.next().unwrap_or_else(|| {
                    fail("'--check' expects a baseline path (e.g. --check BENCH_engine.json)")
                });
                opts.check = Some(v.clone());
            }
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("'--out' expects a directory (e.g. --out traces)"));
                opts.out = Some(v.clone());
            }
            "--format" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("'--format' expects one of: jsonl, chrome, summary"));
                if !matches!(v.as_str(), "jsonl" | "chrome" | "summary") {
                    fail(&format!(
                        "unknown trace format '{v}' (expected jsonl, chrome, or summary)"
                    ));
                }
                opts.format = Some(v.clone());
            }
            other if other.starts_with('-') => {
                fail(&format!("unknown option '{other}'"));
            }
            other => opts.positional.push(other.to_string()),
        }
    }
    opts
}

fn parse_threads(flag: &str, v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(0) => fail(&format!("'{flag} 0' makes no progress; use at least 1")),
        Ok(n) if n > 512 => fail(&format!(
            "'{flag} {n}' is past any plausible core count; use 1..=512"
        )),
        Ok(n) => n,
        Err(_) => fail(&format!("'{flag}' expects a positive integer, got '{v}'")),
    }
}

fn write_json(path: &str, doc: &Json) {
    if let Err(e) = std::fs::write(path, doc.render()) {
        eprintln!("cannot write '{path}': {e}");
        std::process::exit(1);
    }
    eprintln!("[wrote {path}]");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    match args.first().map(String::as_str) {
        Some("scenario") => scenario_main(&args[1..]),
        Some("trace") => trace_main(&args[1..]),
        Some("bench") => bench_main(&args[1..]),
        Some("mux") => mux_main(&args[1..]),
        Some("soak") => soak_main(&args[1..]),
        _ => experiments_main(&args),
    }
}

/// Reject `repro trace`-only flags in another subcommand's argument list.
fn reject_trace_flags(opts: &Opts, subcommand: &str) {
    if opts.out.is_some() {
        fail(&format!(
            "'--out' applies to `repro trace`, not `{subcommand}`"
        ));
    }
    if opts.format.is_some() {
        fail(&format!(
            "'--format' applies to `repro trace`, not `{subcommand}`"
        ));
    }
}

/// Reject `--shard-delivery` outside the two subcommands that run
/// simulations through the scenario machinery.
fn reject_shard_flag(opts: &Opts, subcommand: &str) {
    if opts.shard_delivery.is_some() {
        fail(&format!(
            "'--shard-delivery' applies to `repro scenario` and `repro trace`, not `{subcommand}`"
        ));
    }
}

/// Reject `repro bench`-only telemetry flags elsewhere.
fn reject_bench_flags(opts: &Opts, subcommand: &str) {
    if opts.counters {
        fail(&format!(
            "'--counters' applies to `repro bench`, not `{subcommand}`"
        ));
    }
    if opts.overhead {
        fail(&format!(
            "'--overhead' applies to `repro bench`, not `{subcommand}`"
        ));
    }
    if opts.scale {
        fail(&format!(
            "'--scale' applies to `repro bench`, not `{subcommand}`"
        ));
    }
}

// -------------------------------------------------------------------- bench

fn bench_main(args: &[String]) {
    let opts = parse_opts(args);
    if opts.paper {
        fail("'--paper' applies to the figure experiments, not `repro bench`");
    }
    if !opts.positional.is_empty() {
        fail(&format!(
            "`repro bench` takes no workload arguments (got '{}')",
            opts.positional[0]
        ));
    }
    reject_trace_flags(&opts, "repro bench");
    reject_shard_flag(&opts, "repro bench");
    let mode = if opts.quick {
        BenchMode::Quick
    } else {
        BenchMode::Full
    };
    if opts.overhead {
        if opts.check.is_some()
            || opts.counters
            || opts.json.is_some()
            || opts.threads.is_some()
            || opts.scale
        {
            fail(
                "'--overhead' runs alone (single-threaded, no JSON document): \
                 drop the other bench flags",
            );
        }
        overhead_main(mode);
        return;
    }
    if opts.scale {
        if opts.check.is_some() {
            fail(
                "'--check' compares the fixed workloads against a baseline; the scale \
                 ladder asserts its own RSS ceiling — run it without '--check'",
            );
        }
        if opts.counters || opts.threads.is_some() {
            fail(
                "'--scale' runs the ladder single-threaded without counter replay: \
                 drop '--counters' / '--threads'",
            );
        }
        scale_main(mode, &opts);
        return;
    }
    let threads = opts.threads.unwrap_or(1);
    eprintln!(
        "# engine bench ({} scale, {} thread{})",
        mode.label(),
        threads,
        if threads == 1 { "" } else { "s" }
    );
    let results = engine_bench::run_threaded(mode, threads);
    println!(
        "{:<22} {:>7} {:>6} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "workload", "n", "runs", "events", "wall_ms", "events/s", "ticks/s", "speedup"
    );
    let baseline = engine_bench::recorded_baseline(mode);
    for r in &results {
        let speedup = baseline
            .iter()
            .find(|&&(name, _)| name == r.name)
            .map(|&(_, eps)| r.events_per_sec / eps);
        println!(
            "{:<22} {:>7} {:>6} {:>12} {:>10.1} {:>12.0} {:>12.0} {:>9}",
            r.name,
            r.n,
            r.runs,
            r.events,
            r.wall_ms,
            r.events_per_sec,
            r.ticks_per_sec,
            speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
        );
    }
    // A pure `--check` run measures and compares without touching any
    // file; `--json PATH` (or the plain default) appends this run to
    // the target document's history instead of discarding it.
    let json_path = match (&opts.json, &opts.check) {
        (Some(p), _) => Some(p.clone()),
        (None, None) => Some("BENCH_engine.json".to_string()),
        (None, Some(_)) => None,
    };
    if opts.counters && json_path.is_none() {
        fail(
            "'--counters' extends the JSON document, which a pure '--check' run \
             never writes; add '--json PATH'",
        );
    }
    if let Some(path) = json_path {
        let prior = std::fs::read_to_string(&path).ok();
        let entry =
            trajectory::history_entry(&trajectory::git_sha(), mode.label(), threads, &results);
        let history = trajectory::appended_history(prior.as_deref(), entry);
        let mut doc = engine_bench::to_json(mode, threads, &results, history);
        if opts.counters {
            eprintln!("# instrumented counter replay ({} scale)", mode.label());
            doc = doc.with("counters", engine_bench::counters_json(mode));
        }
        write_json(&path, &doc);
    }
    if let Some(baseline_path) = &opts.check {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline '{baseline_path}': {e}");
                std::process::exit(1);
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("baseline '{baseline_path}' is not valid JSON: {e}");
                std::process::exit(1);
            }
        };
        let failures = trajectory::check_against(&doc, &results);
        if failures.is_empty() {
            eprintln!("[--check passed against {baseline_path}]");
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            for p in flight::write_bench_dumps(mode, &failures, Path::new(".")) {
                eprintln!("[flight recorder dump: {}]", p.display());
            }
            std::process::exit(1);
        }
    }
}

/// `repro bench --overhead`: the telemetry-cost gate. Two
/// telemetry-disabled passes bracket the machine's noise; the null-sink
/// pass (every hook firing, nothing recorded) must stay within
/// [`engine_bench::MAX_OVERHEAD`] of the faster one.
fn overhead_main(mode: BenchMode) {
    eprintln!(
        "# telemetry overhead check ({} scale, single thread)",
        mode.label()
    );
    let o = engine_bench::measure_overhead(mode);
    println!("{:<22} {:>14}", "pass", "events/s");
    println!("{:<22} {:>14.0}", "disabled (a)", o.disabled_a);
    println!("{:<22} {:>14.0}", "disabled (b)", o.disabled_b);
    println!("{:<22} {:>14.0}", "null sink", o.null_sink);
    println!(
        "overhead: {:.2}% of disabled throughput (budget {:.0}%)",
        o.overhead_fraction() * 100.0,
        engine_bench::MAX_OVERHEAD * 100.0
    );
    match o.failure() {
        None => eprintln!("[overhead check passed]"),
        Some(f) => {
            eprintln!("OVERHEAD: {f}");
            std::process::exit(1);
        }
    }
}

/// `repro bench --scale`: the host-count ladder. Each rung's events/sec
/// and peak RSS land in the JSON document's history (mode
/// `scale-quick` / `scale-full`), and a rung breaching the
/// 1 KiB/host RSS ceiling exits non-zero — the memory gate behind the
/// million-host claim in docs/SCALING.md.
fn scale_main(mode: BenchMode, opts: &Opts) {
    eprintln!(
        "# engine scale ladder ({} scale, single thread)",
        mode.label()
    );
    let results = engine_bench::run_scale(mode);
    println!(
        "{:<12} {:>9} {:>12} {:>10} {:>12} {:>10} {:>9}",
        "rung", "n", "events", "wall_ms", "events/s", "rss_kb", "kB/host"
    );
    for r in &results {
        println!(
            "{:<12} {:>9} {:>12} {:>10.1} {:>12.0} {:>10} {:>9}",
            r.name,
            r.n,
            r.events,
            r.wall_ms,
            r.events_per_sec,
            r.peak_rss_kb.map_or("-".to_string(), |k| k.to_string()),
            r.peak_rss_kb
                .map_or("-".to_string(), |k| format!("{:.2}", k as f64 / r.n as f64)),
        );
    }
    let path = opts
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let prior = std::fs::read_to_string(&path).ok();
    let label = format!("scale-{}", mode.label());
    let entry = trajectory::history_entry(&trajectory::git_sha(), &label, 1, &results);
    let history = trajectory::appended_history(prior.as_deref(), entry);
    write_json(&path, &engine_bench::to_json(mode, 1, &results, history));
    // Greppable mid-rung line for CI logs: the 10⁵ rung's throughput
    // next to its RSS, one line, fixed keys.
    if let Some(r) = results.iter().find(|r| r.name == "scale_100k") {
        println!(
            "scale_mid_rung: n {} events_per_sec {:.0} rss_kb {}",
            r.n,
            r.events_per_sec,
            r.peak_rss_kb.map_or("-".to_string(), |k| k.to_string()),
        );
    }
    let failures = engine_bench::scale_failures(&results);
    if failures.is_empty() {
        eprintln!(
            "[scale ladder passed: RSS ceiling {} KiB/host + {} kB base]",
            engine_bench::SCALE_RSS_PER_HOST_KB,
            engine_bench::SCALE_RSS_ALLOWANCE_KB
        );
    } else {
        for f in &failures {
            eprintln!("SCALE FAILURE: {f}");
        }
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------- mux

/// `repro mux`: the multiplexed-query bench. One shared-substrate run
/// of the preset workload versus the same queries executed one at a
/// time over the same environment — answers must agree before any
/// throughput number is reported, and the wall-clock speedup must reach
/// [`mux::MIN_SPEEDUP`] or the run exits non-zero (the CI gate).
fn mux_main(args: &[String]) {
    let opts = parse_opts(args);
    if opts.paper {
        fail("'--paper' applies to the figure experiments, not `repro mux`");
    }
    if opts.threads.is_some() {
        fail("'--threads' does not apply to `repro mux`: both sides run single-threaded");
    }
    if opts.check.is_some() {
        fail("'--check' applies to `repro bench`; `repro mux` gates on its own speedup floor");
    }
    reject_trace_flags(&opts, "repro mux");
    reject_bench_flags(&opts, "repro mux");
    reject_shard_flag(&opts, "repro mux");
    if !opts.positional.is_empty() {
        fail(&format!(
            "`repro mux` takes no workload arguments (got '{}')",
            opts.positional[0]
        ));
    }
    let mode = if opts.quick {
        BenchMode::Quick
    } else {
        BenchMode::Full
    };
    eprintln!("# multiplexed query bench ({} scale)", mode.label());
    let r = mux::run(mode);
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "n", "queries", "mux_ms", "seq_ms", "mux_msgs", "seq_msgs", "joins", "valid%"
    );
    println!(
        "{:<10} {:>8} {:>12.1} {:>12.1} {:>12} {:>12} {:>8} {:>7.0}%",
        r.n,
        r.queries,
        r.mux_wall_ms,
        r.sequential_wall_ms,
        r.raw_messages,
        r.sequential_raw_messages,
        r.cache_joins,
        r.valid_fraction * 100.0,
    );
    // Fixed-key headline lines for the CI awk gate.
    println!("queries_per_sec: {:.1}", r.queries_per_sec);
    println!("speedup: {:.2}", r.speedup);
    if !r.answers_agree() {
        for m in &r.mismatches {
            eprintln!("MUX MISMATCH: {m}");
        }
        eprintln!(
            "[mux failed: {} of {} non-joined queries diverged from their solo twins]",
            r.mismatches.len(),
            r.queries
        );
        std::process::exit(1);
    }
    let path = opts
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let prior = std::fs::read_to_string(&path).ok();
    let label = format!("mux-{}", mode.label());
    let entry = Json::obj()
        .with("sha", trajectory::git_sha())
        .with("mode", label.as_str())
        .with("threads", 1u32)
        .with("mux", r.to_json());
    let history = trajectory::appended_history(prior.as_deref(), entry);
    let mut doc = Json::obj()
        .with("schema", "bench_engine/v2")
        .with("mode", label.as_str())
        .with("threads", 1u32);
    // A mux run must not erase the fixed-workload trajectory record:
    // carry the prior document's measurement blocks forward untouched.
    if let Some(p) = prior.as_deref().and_then(|t| Json::parse(t).ok()) {
        for key in ["workloads", "baseline"] {
            if let Some(v) = p.get(key) {
                doc = doc.with(key, v.clone());
            }
        }
    }
    let doc = doc
        .with("mux", r.to_json())
        .with("history", Json::Arr(history));
    write_json(&path, &doc);
    if r.speedup < mux::MIN_SPEEDUP {
        eprintln!(
            "MUX FAILURE: speedup {:.2}x below the {:.0}x floor",
            r.speedup,
            mux::MIN_SPEEDUP
        );
        std::process::exit(1);
    }
    eprintln!(
        "[mux passed: {:.2}x over sequential at equal per-query answers, floor {:.0}x]",
        r.speedup,
        mux::MIN_SPEEDUP
    );
}

// --------------------------------------------------------------------- soak

fn soak_main(args: &[String]) {
    let opts = parse_opts(args);
    if opts.paper {
        fail("'--paper' applies to the figure experiments, not `repro soak`");
    }
    if opts.threads.is_some() {
        fail("'--threads' applies to `repro bench` and `repro scenario`, not `repro soak`");
    }
    if opts.check.is_some() {
        fail("'--check' applies to `repro bench`; the soak carries its own limits");
    }
    reject_trace_flags(&opts, "repro soak");
    reject_bench_flags(&opts, "repro soak");
    reject_shard_flag(&opts, "repro soak");
    if !opts.positional.is_empty() {
        fail(&format!(
            "`repro soak` takes no workload arguments (got '{}')",
            opts.positional[0]
        ));
    }
    let mode = if opts.quick {
        BenchMode::Quick
    } else {
        BenchMode::Full
    };
    eprintln!("# soak ({} scale)", mode.label());
    let results = soak::run(mode);
    println!(
        "{:<28} {:>6} {:>8} {:>8} {:>12} {:>10} {:>12} {:>10} {:>9}",
        "workload",
        "n",
        "horizon",
        "windows",
        "events",
        "wall_ms",
        "events/s",
        "declared",
        "rss_kb"
    );
    for r in &results {
        println!(
            "{:<28} {:>6} {:>8} {:>8} {:>12} {:>10.1} {:>12.0} {:>9.0}% {:>9}",
            r.name,
            r.n,
            r.horizon_ticks,
            r.windows,
            r.events,
            r.wall_ms,
            r.events_per_sec,
            r.declared_fraction * 100.0,
            r.peak_rss_kb.map_or("-".to_string(), |k| k.to_string()),
        );
    }
    if let Some(path) = &opts.json {
        write_json(path, &soak::to_json(mode, &results));
    }
    let failures = soak::assert_limits(&results, mode);
    if failures.is_empty() {
        let (min_eps, max_rss) = soak::limits(mode);
        eprintln!("[soak passed: events/s floor {min_eps:.0}, RSS ceiling {max_rss} kB]");
    } else {
        for f in &failures {
            eprintln!("SOAK FAILURE: {f}");
        }
        // Debuggability over speed on the failure path: replay each
        // breaching workload with a flight recorder and keep its last
        // ticks next to the failure.
        for p in flight::write_soak_dumps(mode, &failures, Path::new(".")) {
            eprintln!("[flight recorder dump: {}]", p.display());
        }
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------- scenarios

fn scenario_main(args: &[String]) {
    let opts = parse_opts(args);
    if opts.paper {
        fail("'--paper' applies to the figure experiments, not `repro scenario`");
    }
    if opts.quick {
        fail("'--quick' applies to `repro bench`; scenario scale lives in the .scn file");
    }
    if opts.check.is_some() {
        fail("'--check' applies to `repro bench`; scenario reports have no perf baseline");
    }
    reject_trace_flags(&opts, "repro scenario");
    reject_bench_flags(&opts, "repro scenario");
    if opts.positional.is_empty() {
        fail("`repro scenario` needs at least one .scn file");
    }
    let threads = opts.threads.unwrap_or(1);
    let mut reports = Vec::new();
    for path in &opts.positional {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read '{path}': {e}");
                std::process::exit(1);
            }
        };
        let scn: Scenario = match text.parse() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        };
        let start = Instant::now();
        let report = run_batch_sharded(&scn, threads, opts.shard_delivery);
        for t in summary_tables(&report) {
            println!("{t}");
        }
        eprintln!(
            "[{} done: {} runs x {} protocol(s) on {} thread(s) in {:.1?}]\n",
            report.scenario,
            report.runs,
            report.protocols.len(),
            threads,
            start.elapsed()
        );
        reports.push(report);
    }
    if let Some(path) = &opts.json {
        let doc = Json::Arr(reports.iter().map(|r| r.to_json()).collect());
        write_json(path, &doc);
    }
}

// ------------------------------------------------------------------- traces

/// `repro trace FILE...` — re-execute each scenario's batch matrix with
/// a telemetry recorder attached to every cell and write the exporters'
/// files. The trace never touches the scenario's *report*: `repro
/// scenario` output stays byte-identical whether or not a `[telemetry]`
/// section exists or a trace was ever taken.
fn trace_main(args: &[String]) {
    let opts = parse_opts(args);
    if opts.paper {
        fail("'--paper' applies to the figure experiments, not `repro trace`");
    }
    if opts.quick {
        fail("'--quick' applies to `repro bench`; trace scale lives in the .scn file");
    }
    if opts.check.is_some() {
        fail("'--check' applies to `repro bench`; traces have no perf baseline");
    }
    if opts.json.is_some() {
        fail("`repro trace` writes per-format files; use '--out DIR' and '--format'");
    }
    reject_bench_flags(&opts, "repro trace");
    if opts.positional.is_empty() {
        fail("`repro trace` needs at least one .scn file");
    }
    let threads = opts.threads.unwrap_or(1);
    let formats: Vec<&str> = match &opts.format {
        None => vec!["jsonl", "chrome", "summary"],
        Some(f) => vec![f.as_str()],
    };
    let out_dir = PathBuf::from(opts.out.as_deref().unwrap_or("."));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create '{}': {e}", out_dir.display());
        std::process::exit(1);
    }
    for path in &opts.positional {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read '{path}': {e}");
                std::process::exit(1);
            }
        };
        let scn: Scenario = match text.parse() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        };
        let start = Instant::now();
        let doc = trace_batch_sharded(&scn, threads, opts.shard_delivery);
        for fmt in &formats {
            let (ext, rendered) = match *fmt {
                "jsonl" => ("jsonl", export::jsonl(&doc)),
                "chrome" => ("chrome.json", export::chrome(&doc)),
                _ => ("summary.txt", export::summary(&doc)),
            };
            let file = out_dir.join(format!("TRACE_{}.{ext}", doc.name));
            if let Err(e) = std::fs::write(&file, rendered) {
                eprintln!("cannot write '{}': {e}", file.display());
                std::process::exit(1);
            }
            eprintln!("[wrote {}]", file.display());
        }
        print!("{}", export::summary(&doc));
        eprintln!(
            "[{} traced: {} cells on {} thread(s) in {:.1?}]\n",
            doc.name,
            doc.cells.len(),
            threads,
            start.elapsed()
        );
    }
}

/// One table per protocol section — a multi-protocol scenario prints
/// its paired contenders back to back, followed by one paired-difference
/// table per contender (`contender − baseline`, mean ± 95% CI per cell;
/// `|mean| > ci95` reads as a significant protocol effect).
fn summary_tables(report: &pov_scenario::Report) -> Vec<Table> {
    let mut tables: Vec<Table> = report
        .protocols
        .iter()
        .map(|section| {
            let windows = if report.windows > 1 {
                format!(", {} windows", report.windows)
            } else {
                String::new()
            };
            let title = format!(
                "scenario '{}' — {} on {} (n = {}, D̂ = {}, regime = {}{}): {} runs, {:.0}% declared, {:.0}% valid",
                report.scenario,
                section.protocol,
                report.topology,
                report.n,
                report.d_hat,
                report.churn_model,
                windows,
                report.runs,
                section.declared_fraction * 100.0,
                section.valid_fraction * 100.0,
            );
            let mut t = Table::new(title, &["metric", "mean", "stddev", "min", "max", "count"]);
            for &(name, agg) in &section.metrics {
                t.push(vec![
                    name.to_string(),
                    format!("{:.2}", agg.mean),
                    format!("{:.2}", agg.stddev),
                    format!("{:.2}", agg.min),
                    format!("{:.2}", agg.max),
                    agg.count.to_string(),
                ]);
            }
            t
        })
        .collect();
    if let Some(w) = &report.workload {
        let title = format!(
            "scenario '{}' — [workload]: {} queries/cell multiplexed over one substrate: \
             {:.0}% declared, {:.0}% valid",
            report.scenario,
            w.queries_per_cell,
            w.declared_fraction * 100.0,
            w.valid_fraction * 100.0,
        );
        let mut t = Table::new(title, &["metric", "total"]);
        t.push(vec![
            "raw_messages".to_string(),
            w.stats.raw_messages.to_string(),
        ]);
        t.push(vec![
            "payload_items".to_string(),
            w.stats.payload_items.to_string(),
        ]);
        t.push(vec![
            "cache_joins".to_string(),
            w.stats.cache_joins.to_string(),
        ]);
        t.push(vec!["queries".to_string(), w.records.len().to_string()]);
        tables.push(t);
    }
    for paired in &report.paired {
        let title = format!(
            "scenario '{}' — paired difference {} − {} per (seed, rep, window) cell",
            report.scenario, paired.protocol, paired.baseline,
        );
        let mut t = Table::new(title, &["metric", "mean", "ci95", "significant", "count"]);
        for d in &paired.diffs {
            t.push(vec![
                d.metric.to_string(),
                format!("{:.2}", d.mean),
                format!("±{:.2}", d.ci95),
                // A single cell has no variance estimate (ci95
                // degenerates to 0); refuse to call that significant.
                if d.count < 2 {
                    "-".to_string()
                } else {
                    (d.mean.abs() > d.ci95).to_string()
                },
                d.count.to_string(),
            ]);
        }
        tables.push(t);
    }
    tables
}

// -------------------------------------------------------------- experiments

fn experiments_main(args: &[String]) {
    let opts = parse_opts(args);
    if opts.threads.is_some() {
        fail("'--threads' only applies to `repro scenario` (experiments run one trial at a time)");
    }
    if opts.quick {
        fail("'--quick' applies to `repro bench`; experiments default to quick scale already");
    }
    if opts.check.is_some() {
        fail("'--check' applies to `repro bench`; experiments have no perf baseline");
    }
    reject_trace_flags(&opts, "the experiments");
    reject_bench_flags(&opts, "the experiments");
    reject_shard_flag(&opts, "the experiments");
    let scale = if opts.paper {
        Scale::Paper
    } else {
        Scale::Quick
    };
    let mut wanted: Vec<&str> = opts.positional.iter().map(String::as_str).collect();
    if wanted.contains(&"list") {
        println!("experiments: {}", ALL.join(" "));
        return;
    }
    // Reject typos before any experiment spends work.
    if let Some(bad) = wanted.iter().find(|w| !ALL.contains(w)) {
        fail(&format!("unknown experiment '{bad}' (try: repro list)"));
    }
    if wanted.is_empty() {
        wanted = ALL.to_vec();
    }

    println!(
        "# The Price of Validity — reproduction harness ({:?} scale)\n",
        scale
    );
    let mut emitted: Vec<(String, Vec<Table>)> = Vec::new();
    for name in wanted {
        let start = Instant::now();
        let tables = run_experiment(name, scale);
        emitted.push((name.to_string(), tables));
        eprintln!("[{name} done in {:.1?}]\n", start.elapsed());
    }
    if let Some(path) = &opts.json {
        let doc = Json::obj().with("scale", format!("{scale:?}")).with(
            "experiments",
            Json::Arr(
                emitted
                    .iter()
                    .map(|(name, tables)| {
                        Json::obj().with("experiment", name.as_str()).with(
                            "tables",
                            Json::Arr(tables.iter().map(table_to_json).collect()),
                        )
                    })
                    .collect(),
            ),
        );
        write_json(path, &doc);
    }
}

/// Run one experiment: print its tables (then any supplementary lines,
/// matching the original report order) and return the tables for `--json`.
fn run_experiment(name: &str, scale: Scale) -> Vec<Table> {
    let tables = match name {
        "fig6" => {
            let cfg = scale.fig06();
            vec![fig06::table(&fig06::run(&cfg))]
        }
        "fig7" => {
            let cfg = scale.fig07();
            vec![validity::table(&cfg, &validity::run(&cfg))]
        }
        "fig8" => {
            let cfg = scale.fig08();
            vec![validity::table(&cfg, &validity::run(&cfg))]
        }
        "fig9" => {
            let cfg = scale.fig09();
            vec![validity::table(&cfg, &validity::run(&cfg))]
        }
        "fig10" => {
            let cfg = scale.fig10();
            let rows = fig10::run(&cfg);
            let t = fig10::table(&rows);
            println!("{t}");
            println!("WILDFIRE/SPANNINGTREE message ratios:");
            for (topo, n, ratio) in fig10::price_ratios(&rows) {
                println!("  {topo:<10} |H|={n:<6} {ratio:.2}x");
            }
            println!();
            return vec![t];
        }
        "fig11" => {
            let cfg = scale.fig11();
            vec![fig11::table(&fig11::run(&cfg))]
        }
        "fig12" => {
            let cfg = scale.fig12();
            let rows = fig12::run(&cfg);
            let t = fig12::table(&rows);
            println!("{t}");
            println!("max computation-cost ratios (WILDFIRE/SPANNINGTREE):");
            for (topo, ratio) in fig12::max_ratios(&rows) {
                println!("  {topo:<10} {ratio:.1}x");
            }
            println!();
            return vec![t];
        }
        "fig13a" => {
            let cfg = scale.fig13();
            vec![fig13::time_table(&fig13::run_time_cost(&cfg))]
        }
        "fig13b" => {
            let cfg = scale.fig13();
            let profiles = fig13::run_profile(&cfg);
            let t = fig13::profile_table(&profiles);
            println!("{t}");
            for p in &profiles {
                let series: Vec<String> = p.sent_per_tick.iter().map(|c| c.to_string()).collect();
                println!("  {} per-tick: [{}]", p.topology, series.join(", "));
            }
            println!();
            return vec![t];
        }
        "price" => {
            let cfg = scale.price();
            vec![price::table(&price::run(&cfg))]
        }
        "ablation" => {
            let cfg = scale.ablation();
            vec![ablation::table(&ablation::run(&cfg))]
        }
        "adversary" => {
            let cfg = scale.adversary();
            let rows = adversary::run(&cfg);
            let t = adversary::table(&rows);
            println!("{t}");
            // Machine-checkable headline for the CI gate: > 1 means the
            // adaptive adversary beats oblivious churn at every budget.
            println!(
                "targeted/uniform interval deviation min ratio: {:.3}",
                adversary::min_interval_ratio(&rows)
            );
            println!();
            return vec![t];
        }
        "overlay" => {
            let cfg = scale.overlay();
            let rows = overlay::run(&cfg);
            let t = overlay::table(&rows);
            println!("{t}");
            // Machine-checkable headline for the CI gate: the validity
            // side must not dip below ~1 (maintenance never loses
            // ground), and the cost side reports what that costs.
            println!(
                "maintained/static value min gain: {:.3}",
                overlay::min_value_gain(&rows)
            );
            println!(
                "maintained/static message max ratio: {:.3}",
                overlay::max_cost_ratio(&rows)
            );
            println!();
            return vec![t];
        }
        "ext" => {
            let cfg = match scale {
                Scale::Paper => ext_accuracy::Config::paper(),
                Scale::Quick => ext_accuracy::Config {
                    n: 20_000,
                    ..ext_accuracy::Config::paper()
                },
            };
            vec![ext_accuracy::table(&cfg, &ext_accuracy::run(&cfg))]
        }
        other => fail(&format!("unknown experiment '{other}' (try: repro list)")),
    };
    for t in &tables {
        println!("{t}");
    }
    tables
}
