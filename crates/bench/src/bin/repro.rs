//! `repro` — regenerate every table and figure of the paper's §6.
//!
//! ```sh
//! repro                  # all experiments at quick scale
//! repro --paper          # all experiments at the paper's full sizes
//! repro fig6 fig13b      # a subset
//! repro list             # what exists
//! ```

use pov_bench::Scale;
use pov_core::experiments::{
    ablation, ext_accuracy, fig06, fig10, fig11, fig12, fig13, price, validity,
};
use std::time::Instant;

const ALL: &[&str] = &[
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b", "price",
    "ablation", "ext",
];

const USAGE: &str = "\
repro — regenerate the tables and figures of the paper's §6

USAGE:
    repro [--paper] [EXPERIMENT]...

OPTIONS:
    --paper      run at the paper's full §6 sizes (default: quick scale)
    -h, --help   print this help

ARGUMENTS:
    EXPERIMENT   subset to run (default: all); `repro list` prints them";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    if let Some(bad) = args.iter().find(|a| a.starts_with('-') && *a != "--paper") {
        eprintln!("unknown option '{bad}'\n\n{USAGE}");
        std::process::exit(2);
    }
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Quick
    };
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.contains(&"list") {
        println!("experiments: {}", ALL.join(" "));
        return;
    }
    // Reject typos before any experiment spends work.
    if let Some(bad) = wanted.iter().find(|w| !ALL.contains(w)) {
        eprintln!("unknown experiment '{bad}' (try: repro list)");
        std::process::exit(2);
    }
    if wanted.is_empty() {
        wanted = ALL.to_vec();
    }

    println!(
        "# The Price of Validity — reproduction harness ({:?} scale)\n",
        scale
    );
    for name in wanted {
        let start = Instant::now();
        match name {
            "fig6" => {
                let cfg = scale.fig06();
                println!("{}", fig06::table(&fig06::run(&cfg)));
            }
            "fig7" => {
                let cfg = scale.fig07();
                println!("{}", validity::table(&cfg, &validity::run(&cfg)));
            }
            "fig8" => {
                let cfg = scale.fig08();
                println!("{}", validity::table(&cfg, &validity::run(&cfg)));
            }
            "fig9" => {
                let cfg = scale.fig09();
                println!("{}", validity::table(&cfg, &validity::run(&cfg)));
            }
            "fig10" => {
                let cfg = scale.fig10();
                let rows = fig10::run(&cfg);
                println!("{}", fig10::table(&rows));
                println!("WILDFIRE/SPANNINGTREE message ratios:");
                for (topo, n, ratio) in fig10::price_ratios(&rows) {
                    println!("  {topo:<10} |H|={n:<6} {ratio:.2}x");
                }
                println!();
            }
            "fig11" => {
                let cfg = scale.fig11();
                println!("{}", fig11::table(&fig11::run(&cfg)));
            }
            "fig12" => {
                let cfg = scale.fig12();
                let rows = fig12::run(&cfg);
                println!("{}", fig12::table(&rows));
                println!("max computation-cost ratios (WILDFIRE/SPANNINGTREE):");
                for (topo, ratio) in fig12::max_ratios(&rows) {
                    println!("  {topo:<10} {ratio:.1}x");
                }
                println!();
            }
            "fig13a" => {
                let cfg = scale.fig13();
                println!("{}", fig13::time_table(&fig13::run_time_cost(&cfg)));
            }
            "fig13b" => {
                let cfg = scale.fig13();
                let profiles = fig13::run_profile(&cfg);
                println!("{}", fig13::profile_table(&profiles));
                for p in &profiles {
                    let series: Vec<String> =
                        p.sent_per_tick.iter().map(|c| c.to_string()).collect();
                    println!("  {} per-tick: [{}]", p.topology, series.join(", "));
                }
                println!();
            }
            "price" => {
                let cfg = scale.price();
                println!("{}", price::table(&price::run(&cfg)));
            }
            "ablation" => {
                let cfg = scale.ablation();
                println!("{}", ablation::table(&ablation::run(&cfg)));
            }
            "ext" => {
                let cfg = match scale {
                    Scale::Paper => ext_accuracy::Config::paper(),
                    Scale::Quick => ext_accuracy::Config {
                        n: 20_000,
                        ..ext_accuracy::Config::paper()
                    },
                };
                println!("{}", ext_accuracy::table(&cfg, &ext_accuracy::run(&cfg)));
            }
            other => {
                eprintln!("unknown experiment '{other}' (try: repro list)");
                std::process::exit(2);
            }
        }
        eprintln!("[{name} done in {:.1?}]\n", start.elapsed());
    }
}
