//! Ablation A3 bench: the §5.2 sum-sketch insertion — the paper's
//! literal per-element loop vs the exact binomial-splitting fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pov_core::pov_sketch::FmSketch;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sketch_sum_insert");
    for &m in &[100u64, 1_000, 10_000, 100_000] {
        group.throughput(Throughput::Elements(m));
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, &m| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut s = FmSketch::new(8);
                s.insert_elements(m, &mut rng);
                black_box(s)
            });
        });
        group.bench_with_input(BenchmarkId::new("fast", m), &m, |b, &m| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut s = FmSketch::new(8);
                s.insert_elements_fast(m, &mut rng);
                black_box(s)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sketch_merge");
    for &c_reps in &[4usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("merge", c_reps), &c_reps, |b, &c_reps| {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut a = FmSketch::new(c_reps);
            let mut bb = FmSketch::new(c_reps);
            a.insert_elements(500, &mut rng);
            bb.insert_elements(500, &mut rng);
            b.iter(|| black_box(a.clone().merged(&bb)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
