//! Fig 13 bench: time-cost sweep (a) and the per-tick message profile (b).

use criterion::{criterion_group, criterion_main, Criterion};
use pov_core::experiments::fig13;
use pov_core::pov_topology::generators::TopologyKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_time");
    group.sample_size(10);
    let cfg = fig13::Config {
        sizes: vec![1_000],
        d_hat_multipliers: vec![1, 2, 4],
        profile_topologies: vec![(TopologyKind::Random, 1_000), (TopologyKind::Grid, 900)],
        c: 8,
        seed: 13,
    };
    group.bench_function("time_cost_sweep", |b| {
        b.iter(|| black_box(fig13::run_time_cost(&cfg)));
    });
    group.bench_function("per_tick_profile", |b| {
        b.iter(|| black_box(fig13::run_profile(&cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
