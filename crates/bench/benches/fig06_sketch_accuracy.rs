//! Fig 6 bench: the duplicate-insensitive count/sum operator sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pov_core::experiments::fig06;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_sketch_accuracy");
    group.sample_size(10);
    for &m in &[1u64 << 10, 1 << 12] {
        let cfg = fig06::Config {
            set_sizes: vec![m],
            c_values: vec![8],
            trials: 3,
            seed: 2004,
        };
        group.bench_with_input(BenchmarkId::new("count_and_sum", m), &cfg, |b, cfg| {
            b.iter(|| black_box(fig06::run(cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
