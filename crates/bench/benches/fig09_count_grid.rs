//! Fig 9 bench: the validity sweep (declared value vs departures R)
//! for the Count query on the Grid topology at smoke scale.

use criterion::{criterion_group, criterion_main, Criterion};
use pov_core::experiments::validity;
use pov_core::pov_protocols::Aggregate;
use pov_core::pov_topology::generators::TopologyKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_count_grid");
    group.sample_size(10);
    let cfg = validity::Config {
        trials: 2,
        ..validity::Config::smoke(TopologyKind::Grid, Aggregate::Count, 800)
    };
    group.bench_function("sweep", |b| {
        b.iter(|| black_box(validity::run(&cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
