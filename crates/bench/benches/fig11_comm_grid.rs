//! Fig 11 bench: radio-medium communication cost on the sensor grid,
//! per aggregate (count vs max vs min — early aggregation at work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_core::pov_sim::Medium;
use pov_core::pov_topology::analysis;
use pov_core::pov_topology::generators;
use pov_core::workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_comm_grid");
    group.sample_size(10);
    let graph = generators::grid_square(40);
    let values = workload::paper_values(graph.num_hosts(), 11);
    let d = analysis::diameter_estimate(&graph, 2, 1);
    for aggregate in [Aggregate::Count, Aggregate::Max, Aggregate::Min] {
        let cfg = RunPlan::query(aggregate).d_hat(d + 2).medium(Medium::Radio);
        group.bench_with_input(
            BenchmarkId::new("wildfire_radio", aggregate.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    black_box(runner::run(
                        ProtocolKind::Wildfire(WildfireOpts::default()),
                        &graph,
                        &values,
                        cfg,
                    ))
                });
            },
        );
    }
    let cfg = RunPlan::query(Aggregate::Count)
        .d_hat(d + 2)
        .medium(Medium::Radio);
    group.bench_function("spanning_tree_radio/count", |b| {
        b.iter(|| {
            black_box(runner::run(
                ProtocolKind::SpanningTree,
                &graph,
                &values,
                &cfg,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
