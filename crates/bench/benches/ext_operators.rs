//! Extension bench (§7 future work): the cost of richer duplicate-
//! insensitive operators riding WILDFIRE — FM count vs KMV count vs a
//! full value histogram — plus the gossip baseline for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pov_core::pov_protocols::runner::{self, run_wildfire_operator};
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{Aggregate, Operator, ProtocolKind, RunPlan};
use pov_core::pov_topology::analysis;
use pov_core::pov_topology::generators::TopologyKind;
use pov_core::workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_operators");
    group.sample_size(10);
    let n = 1_500;
    let graph = TopologyKind::Gnutella.build(n, 23);
    let values = workload::paper_values(n, 24);
    let d = analysis::diameter_estimate(&graph, 4, 1);
    let cfg = RunPlan::query(Aggregate::Count).d_hat(d + 2);
    let operators = [
        ("fm_count", Operator::Standard),
        ("kmv_count_k64", Operator::KmvCount { k: 64 }),
        (
            "histogram_10_buckets",
            Operator::ValueHistogram {
                min: workload::PAPER_MIN,
                max: workload::PAPER_MAX,
                buckets: 10,
            },
        ),
    ];
    for (label, op) in operators {
        group.bench_with_input(BenchmarkId::new("wildfire", label), &op, |b, op| {
            b.iter(|| {
                black_box(run_wildfire_operator(
                    *op,
                    WildfireOpts::default(),
                    &graph,
                    &values,
                    &cfg,
                ))
            });
        });
    }
    group.bench_function("gossip_120_rounds/avg", |b| {
        let cfg = RunPlan::query(Aggregate::Average).d_hat(d + 2);
        b.iter(|| {
            black_box(runner::run(
                ProtocolKind::Gossip { rounds: 120 },
                &graph,
                &values,
                &cfg,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
