//! Ablation A1/A2 bench: WILDFIRE with each §5.3 optimization toggled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_core::pov_topology::analysis;
use pov_core::pov_topology::generators::TopologyKind;
use pov_core::workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wildfire");
    group.sample_size(10);
    let n = 2_000;
    let graph = TopologyKind::Random.build(n, 99);
    let values = workload::paper_values(n, 98);
    let d = analysis::diameter_estimate(&graph, 4, 1);
    let cfg = RunPlan::query(Aggregate::Count).d_hat(d + 2);
    let variants = [
        (
            "none",
            WildfireOpts {
                early_deadline: false,
                piggyback: false,
            },
        ),
        (
            "early_deadline",
            WildfireOpts {
                early_deadline: true,
                piggyback: false,
            },
        ),
        (
            "piggyback",
            WildfireOpts {
                early_deadline: false,
                piggyback: true,
            },
        ),
        (
            "both",
            WildfireOpts {
                early_deadline: true,
                piggyback: true,
            },
        ),
    ];
    for (label, opts) in variants {
        group.bench_with_input(BenchmarkId::new("opts", label), &opts, |b, opts| {
            b.iter(|| {
                black_box(runner::run(
                    ProtocolKind::Wildfire(*opts),
                    &graph,
                    &values,
                    &cfg,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
