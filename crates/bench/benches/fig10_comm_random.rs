//! Fig 10 bench: communication cost of each protocol on Random
//! topologies. The per-protocol cost is the figure; the wall-time is the
//! Criterion measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pov_core::pov_protocols::allreport::ReportRouting;
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_core::pov_topology::analysis;
use pov_core::pov_topology::generators::TopologyKind;
use pov_core::workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_comm_random");
    group.sample_size(10);
    let n = 2_000;
    let graph = TopologyKind::Random.build(n, 10);
    let values = workload::paper_values(n, 99);
    let d = analysis::diameter_estimate(&graph, 4, 1);
    let cfg = RunPlan::query(Aggregate::Count).d_hat(d + 2);
    let contestants = [
        ("wildfire", ProtocolKind::Wildfire(WildfireOpts::default())),
        ("spanning_tree", ProtocolKind::SpanningTree),
        ("dag_k2", ProtocolKind::Dag { k: 2 }),
        ("allreport", ProtocolKind::AllReport(ReportRouting::Direct)),
    ];
    for (label, kind) in contestants {
        group.bench_with_input(BenchmarkId::new("count", label), &kind, |b, kind| {
            b.iter(|| black_box(runner::run(*kind, &graph, &values, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
