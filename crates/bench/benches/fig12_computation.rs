//! Fig 12 bench: the computation-cost-distribution measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use pov_core::experiments::fig12;
use pov_core::pov_topology::generators::TopologyKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_computation");
    group.sample_size(10);
    let cfg = fig12::Config {
        topologies: vec![(TopologyKind::PowerLaw, 1_500), (TopologyKind::Grid, 900)],
        c: 8,
        seed: 12,
    };
    group.bench_function("distribution", |b| {
        b.iter(|| black_box(fig12::run(&cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
