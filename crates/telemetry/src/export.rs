//! Trace exporters: deterministic JSONL, Chrome trace-event JSON, and
//! a plain-text per-phase summary table.
//!
//! All three render from the same [`TraceDoc`] and are pure functions
//! of it — byte-identical output for byte-identical recordings, which
//! is what lets CI diff a `--threads 1` trace against a `--threads 8`
//! trace.

use crate::fmt::{push_f64, push_str};
use crate::record::TickSeries;
use crate::TRACE_SCHEMA;
use pov_sim::TickSample;

/// A labelled span of virtual time, `[start, end)` in ticks — one row
/// of the phase table, keyed by the scenario's `PhaseSchedule`
/// labels (or a single synthetic `run` span when the scenario has no
/// phases).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase label (e.g. `growth`, `partition`).
    pub label: String,
    /// First tick of the span (inclusive).
    pub start: u64,
    /// One past the last tick of the span.
    pub end: u64,
}

/// The recording of one simulation cell: a `(protocol, seed, rep,
/// window)` coordinate plus its time series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellTrace {
    /// Protocol contender name (e.g. `WILDFIRE`).
    pub protocol: String,
    /// Scenario seed that drove the cell.
    pub seed: u64,
    /// Repetition index under that seed.
    pub rep: u64,
    /// Continuous-query window index (0 for one-shot runs).
    pub window: u64,
    /// Absolute tick at which the window's run began. Sample ticks in
    /// `series` are window-local; exporters add this offset.
    pub offset: u64,
    /// The recording.
    pub series: TickSeries,
}

/// A full trace document: every recorded cell of a scenario plus the
/// phase spans the summary table aggregates over.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDoc {
    /// Scenario name.
    pub name: String,
    /// Phase spans in ascending `start` order (may be empty).
    pub phases: Vec<PhaseSpan>,
    /// Recorded cells in deterministic (protocol, seed, rep, window)
    /// order.
    pub cells: Vec<CellTrace>,
}

/// Append one JSONL tick line for `s`, shifted to absolute time by
/// `offset`. The overlay fields are appended only on ticks where the
/// maintenance driver acted, so overlay-free recordings render
/// byte-identically to schema v1 output.
pub(crate) fn tick_line(out: &mut String, s: &TickSample, offset: u64) {
    out.push_str(&format!(
        "{{\"t\": {}, \"alive\": {}, \"queue\": {}, \"dispatched\": {}, \"delivered\": {}, \
         \"dropped\": {}, \"sent\": {}, \"fails\": {}, \"joins\": {}, \"timers\": {}, \
         \"frontier\": {}",
        offset + s.tick,
        s.alive,
        s.queue_depth,
        s.dispatched,
        s.delivered,
        s.dropped,
        s.sent,
        s.fails,
        s.joins,
        s.timers,
        s.frontier
    ));
    if s.overlay_added + s.overlay_removed + s.overlay_suspicions > 0 {
        out.push_str(&format!(
            ", \"ov_added\": {}, \"ov_removed\": {}, \"ov_suspicions\": {}",
            s.overlay_added, s.overlay_removed, s.overlay_suspicions
        ));
    }
    out.push_str("}\n");
}

/// Render `doc` as deterministic JSONL: a [`TRACE_SCHEMA`]-stamped
/// header line, then for each cell a `cell` line followed by its tick
/// lines (absolute time) and `summary` lines.
pub fn jsonl(doc: &TraceDoc) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\": ");
    push_str(&mut out, TRACE_SCHEMA);
    out.push_str(", \"name\": ");
    push_str(&mut out, &doc.name);
    out.push_str(&format!(", \"cells\": {}, \"phases\": [", doc.cells.len()));
    for (i, p) in doc.phases.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"label\": ");
        push_str(&mut out, &p.label);
        out.push_str(&format!(", \"start\": {}, \"end\": {}}}", p.start, p.end));
    }
    out.push_str("]}\n");
    for c in &doc.cells {
        out.push_str("{\"cell\": {\"protocol\": ");
        push_str(&mut out, &c.protocol);
        out.push_str(&format!(
            ", \"seed\": {}, \"rep\": {}, \"window\": {}, \"offset\": {}, \"num_hosts\": {}, \
             \"ticks\": {}}}}}\n",
            c.seed,
            c.rep,
            c.window,
            c.offset,
            c.series.num_hosts,
            c.series.ticks.len()
        ));
        for s in &c.series.ticks {
            tick_line(&mut out, s, c.offset);
        }
        for s in &c.series.summaries {
            out.push_str(&format!(
                "{{\"summary\": {{\"t\": {}, \"active\": {}, \"mass\": ",
                c.offset + s.tick,
                s.active
            ));
            push_f64(&mut out, s.sketch_mass);
            out.push_str("}}\n");
        }
    }
    out
}

/// Render `doc` as Chrome trace-event JSON (the "JSON object format":
/// a `traceEvents` array). Load the file in Perfetto or
/// `chrome://tracing`; ticks map to microseconds.
///
/// Layout: pid 0 carries the phase spans; each cell gets its own pid
/// with a `process_name` metadata record, one complete (`X`) event
/// spanning its activity, and `alive` / `queue` / `wave` counter
/// tracks.
pub fn chrome(doc: &TraceDoc) -> String {
    let mut ev: Vec<String> = Vec::new();
    let mut meta = String::new();
    meta.push_str("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, ");
    meta.push_str("\"args\": {\"name\": ");
    push_str(&mut meta, &format!("phases: {}", doc.name));
    meta.push_str("}}");
    ev.push(meta);
    for p in &doc.phases {
        let mut e = String::new();
        e.push_str("{\"name\": ");
        push_str(&mut e, &p.label);
        e.push_str(&format!(
            ", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 0, \
             \"tid\": 0, \"args\": {{}}}}",
            p.start,
            p.end.saturating_sub(p.start)
        ));
        ev.push(e);
    }
    for (i, c) in doc.cells.iter().enumerate() {
        let pid = i + 1;
        let label = format!(
            "{} seed {} rep {} window {}",
            c.protocol, c.seed, c.rep, c.window
        );
        let mut m = String::new();
        m.push_str(&format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": "
        ));
        push_str(&mut m, &label);
        m.push_str("}}");
        ev.push(m);
        let (first, last) = match (c.series.ticks.first(), c.series.ticks.last()) {
            (Some(f), Some(l)) => (c.offset + f.tick, c.offset + l.tick),
            _ => (c.offset, c.offset),
        };
        let mut span = String::new();
        span.push_str("{\"name\": ");
        push_str(&mut span, &c.protocol);
        span.push_str(&format!(
            ", \"cat\": \"cell\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {pid}, \
             \"tid\": 0, \"args\": {{\"seed\": {}, \"rep\": {}, \"window\": {}, \
             \"dispatched\": {}, \"delivered\": {}, \"sent\": {}}}}}",
            first,
            last - first + 1,
            c.seed,
            c.rep,
            c.window,
            c.series.dispatched(),
            c.series.delivered(),
            c.series.sent()
        ));
        ev.push(span);
        for s in &c.series.ticks {
            let t = c.offset + s.tick;
            ev.push(format!(
                "{{\"name\": \"alive\", \"ph\": \"C\", \"ts\": {t}, \"pid\": {pid}, \
                 \"args\": {{\"alive\": {}}}}}",
                s.alive
            ));
            ev.push(format!(
                "{{\"name\": \"queue\", \"ph\": \"C\", \"ts\": {t}, \"pid\": {pid}, \
                 \"args\": {{\"depth\": {}}}}}",
                s.queue_depth
            ));
            ev.push(format!(
                "{{\"name\": \"wave\", \"ph\": \"C\", \"ts\": {t}, \"pid\": {pid}, \
                 \"args\": {{\"frontier\": {}, \"delivered\": {}, \"dropped\": {}}}}}",
                s.frontier, s.delivered, s.dropped
            ));
            // Overlay counter track only on ticks the maintenance
            // driver acted — overlay-free traces are unchanged.
            if s.overlay_added + s.overlay_removed + s.overlay_suspicions > 0 {
                ev.push(format!(
                    "{{\"name\": \"overlay\", \"ph\": \"C\", \"ts\": {t}, \"pid\": {pid}, \
                     \"args\": {{\"added\": {}, \"removed\": {}, \"suspicions\": {}}}}}",
                    s.overlay_added, s.overlay_removed, s.overlay_suspicions
                ));
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"schema\": ");
    push_str(&mut out, TRACE_SCHEMA);
    out.push_str(", \"traceEvents\": [\n");
    for (i, e) in ev.iter().enumerate() {
        out.push_str("  ");
        out.push_str(e);
        if i + 1 < ev.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Render `doc` as a plain-text per-phase summary table: one row per
/// phase span, aggregating every cell's samples that fall inside it.
pub fn summary(doc: &TraceDoc) -> String {
    // Without phases, synthesize one span covering all activity.
    let synthesized;
    let phases: &[PhaseSpan] = if doc.phases.is_empty() {
        let end = doc
            .cells
            .iter()
            .filter_map(|c| c.series.last_tick().map(|t| c.offset + t + 1))
            .max()
            .unwrap_or(1);
        synthesized = vec![PhaseSpan {
            label: "run".into(),
            start: 0,
            end,
        }];
        &synthesized
    } else {
        &doc.phases
    };
    let header = [
        "phase",
        "span",
        "samples",
        "dispatched",
        "delivered",
        "dropped",
        "sent",
        "fails",
        "joins",
        "ov_churn",
        "suspicions",
        "peak_frontier",
        "min_alive",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for p in phases {
        let mut samples = 0u64;
        let mut dispatched = 0u64;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut sent = 0u64;
        let mut fails = 0u64;
        let mut joins = 0u64;
        let mut ov_churn = 0u64;
        let mut suspicions = 0u64;
        let mut peak_frontier = 0u32;
        let mut min_alive: Option<u32> = None;
        for c in &doc.cells {
            for s in &c.series.ticks {
                let t = c.offset + s.tick;
                if t < p.start || t >= p.end {
                    continue;
                }
                samples += 1;
                dispatched += s.dispatched;
                delivered += s.delivered;
                dropped += s.dropped;
                sent += s.sent;
                fails += s.fails;
                joins += s.joins;
                ov_churn += s.overlay_added + s.overlay_removed;
                suspicions += s.overlay_suspicions;
                peak_frontier = peak_frontier.max(s.frontier);
                min_alive = Some(min_alive.map_or(s.alive, |m| m.min(s.alive)));
            }
        }
        rows.push(vec![
            p.label.clone(),
            format!("[{}, {})", p.start, p.end),
            samples.to_string(),
            dispatched.to_string(),
            delivered.to_string(),
            dropped.to_string(),
            sent.to_string(),
            fails.to_string(),
            joins.to_string(),
            ov_churn.to_string(),
            suspicions.to_string(),
            peak_frontier.to_string(),
            min_alive.map_or_else(|| "-".into(), |m| m.to_string()),
        ]);
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = format!(
        "schema {TRACE_SCHEMA}  scenario {}  cells {}\n\n",
        doc.name,
        doc.cells.len()
    );
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(c);
            if i + 1 < cells.len() {
                for _ in c.len()..*w {
                    line.push(' ');
                }
            }
        }
        line.push('\n');
        line
    };
    let header_row: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_row, &widths));
    for row in &rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SummarySample;

    fn sample(tick: u64, alive: u32) -> TickSample {
        TickSample {
            tick,
            alive,
            dispatched: 2,
            delivered: 1,
            sent: 3,
            frontier: 1,
            queue_depth: 4,
            ..TickSample::default()
        }
    }

    fn doc() -> TraceDoc {
        TraceDoc {
            name: "demo".into(),
            phases: vec![
                PhaseSpan {
                    label: "growth".into(),
                    start: 0,
                    end: 5,
                },
                PhaseSpan {
                    label: "stable".into(),
                    start: 5,
                    end: 10,
                },
            ],
            cells: vec![CellTrace {
                protocol: "WILDFIRE".into(),
                seed: 1,
                rep: 0,
                window: 2,
                offset: 4,
                series: TickSeries {
                    num_hosts: 16,
                    arena_pooled: 0,
                    ticks: vec![sample(0, 16), sample(3, 15)],
                    summaries: vec![SummarySample {
                        tick: 0,
                        active: 7,
                        sketch_mass: 2.5,
                    }],
                },
            }],
        }
    }

    #[test]
    fn jsonl_is_schema_stamped_and_offsets_ticks() {
        let out = jsonl(&doc());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "header + cell + 2 ticks + 1 summary");
        assert!(lines[0].contains("\"schema\": \"pov_trace/v1\""));
        assert!(lines[0].contains("\"label\": \"growth\""));
        assert!(lines[1].contains("\"protocol\": \"WILDFIRE\""));
        assert!(lines[1].contains("\"offset\": 4"));
        // Window-local tick 0 surfaces at absolute t=4.
        assert!(lines[2].contains("\"t\": 4"));
        assert!(lines[3].contains("\"t\": 7"));
        assert!(lines[4].contains("\"summary\": {\"t\": 4, \"active\": 7, \"mass\": 2.5}"));
    }

    #[test]
    fn exporters_are_deterministic() {
        let d = doc();
        assert_eq!(jsonl(&d), jsonl(&d));
        assert_eq!(chrome(&d), chrome(&d));
        assert_eq!(summary(&d), summary(&d));
    }

    #[test]
    fn chrome_carries_phases_cells_and_counters() {
        let out = chrome(&doc());
        assert!(out.contains("\"traceEvents\": ["));
        assert!(out.contains("\"name\": \"growth\""));
        assert!(out.contains("\"cat\": \"cell\""));
        assert!(out.contains("\"name\": \"alive\""));
        assert!(out.contains("\"name\": \"wave\""));
        // The cell's span starts at its first active absolute tick.
        assert!(out.contains("\"ts\": 4, \"dur\": 4"));
    }

    #[test]
    fn summary_aggregates_per_phase() {
        let out = summary(&doc());
        // Sample at t=4 lands in growth; t=7 in stable.
        let growth = out.lines().find(|l| l.starts_with("growth")).unwrap();
        let stable = out.lines().find(|l| l.starts_with("stable")).unwrap();
        assert!(growth.contains("[0, 5)"));
        assert!(growth.split_whitespace().any(|w| w == "16"), "min_alive 16");
        assert!(stable.contains("[5, 10)"));
        assert!(stable.split_whitespace().any(|w| w == "15"), "min_alive 15");
    }

    #[test]
    fn overlay_fields_appear_only_on_maintenance_ticks() {
        // Overlay-free documents render without the overlay keys at
        // all — schema-v1 byte identity for every existing scenario.
        let quiet = doc();
        assert!(!jsonl(&quiet).contains("ov_added"));
        assert!(!chrome(&quiet).contains("\"name\": \"overlay\""));

        let mut d = doc();
        d.cells[0].series.ticks[1].overlay_added = 2;
        d.cells[0].series.ticks[1].overlay_removed = 1;
        d.cells[0].series.ticks[1].overlay_suspicions = 3;
        let out = jsonl(&d);
        // Only the maintenance tick carries the keys.
        let tick_lines: Vec<&str> = out.lines().filter(|l| l.contains("\"t\": ")).collect();
        assert!(!tick_lines[0].contains("ov_added"));
        assert!(tick_lines[1].contains("\"ov_added\": 2, \"ov_removed\": 1, \"ov_suspicions\": 3"));
        assert!(chrome(&d).contains("\"args\": {\"added\": 2, \"removed\": 1, \"suspicions\": 3}"));
        // The per-phase summary aggregates churn and suspicions; the
        // maintenance tick (absolute t=7) lands in the stable phase.
        let stable = summary(&d)
            .lines()
            .find(|l| l.starts_with("stable"))
            .unwrap()
            .to_string();
        let cols: Vec<&str> = stable.split_whitespace().collect();
        assert_eq!(cols[cols.len() - 4], "3", "ov_churn column: {stable}");
        assert_eq!(cols[cols.len() - 3], "3", "suspicions column: {stable}");
    }

    #[test]
    fn summary_synthesizes_a_run_phase_when_none_given() {
        let mut d = doc();
        d.phases.clear();
        let out = summary(&d);
        let run = out.lines().find(|l| l.starts_with("run")).unwrap();
        assert!(run.contains("[0, 8)"), "covers through last tick: {run}");
    }
}
