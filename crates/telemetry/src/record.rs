//! The per-tick time-series recorder: a [`TelemetrySink`] that keeps
//! everything the engine reports, in order.

use pov_sim::{TelemetrySink, TickSample, Time};

/// One protocol-state sample (taken every
/// [`TelemetrySink::summary_every`] ticks when enabled).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummarySample {
    /// Tick the sample was taken at.
    pub tick: u64,
    /// Hosts reporting an active query.
    pub active: u32,
    /// Total sketch mass across alive hosts (ascending host order sum —
    /// deterministic).
    pub sketch_mass: f64,
}

/// The complete recording of one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TickSeries {
    /// Hosts in the simulated network.
    pub num_hosts: usize,
    /// Recycled engine-arena buffers held by the worker thread when the
    /// run started (allocation-free hot path occupancy).
    pub arena_pooled: usize,
    /// One sample per *active* tick, in strictly increasing tick order.
    /// Quiet ticks are absent.
    pub ticks: Vec<TickSample>,
    /// Periodic protocol-state samples (empty unless summary sampling
    /// was requested).
    pub summaries: Vec<SummarySample>,
}

impl TickSeries {
    /// Total events dispatched across the recording.
    pub fn dispatched(&self) -> u64 {
        self.ticks.iter().map(|s| s.dispatched).sum()
    }

    /// Total messages delivered across the recording.
    pub fn delivered(&self) -> u64 {
        self.ticks.iter().map(|s| s.delivered).sum()
    }

    /// Total messages sent across the recording.
    pub fn sent(&self) -> u64 {
        self.ticks.iter().map(|s| s.sent).sum()
    }

    /// The widest wave frontier seen in any single tick.
    pub fn peak_frontier(&self) -> u32 {
        self.ticks.iter().map(|s| s.frontier).max().unwrap_or(0)
    }

    /// Total overlay edge churn (adds + removals) across the recording.
    /// Zero for runs without a maintained overlay.
    pub fn overlay_churn(&self) -> u64 {
        self.ticks
            .iter()
            .map(|s| s.overlay_added + s.overlay_removed)
            .sum()
    }

    /// Total failure-detector suspicions across the recording.
    pub fn overlay_suspicions(&self) -> u64 {
        self.ticks.iter().map(|s| s.overlay_suspicions).sum()
    }

    /// Last active tick of the recording (`None` when nothing happened).
    pub fn last_tick(&self) -> Option<u64> {
        self.ticks.last().map(|s| s.tick)
    }
}

/// A [`TelemetrySink`] that records the full per-tick time series of a
/// run. Attach with `SimBuilder::telemetry(&mut recorder)`, run, then
/// take the recording with [`TickRecorder::finish`].
#[derive(Clone, Debug, Default)]
pub struct TickRecorder {
    series: TickSeries,
    summary_every: Option<u64>,
}

impl TickRecorder {
    /// A recorder that keeps tick samples but takes no protocol-state
    /// summaries.
    pub fn new() -> Self {
        TickRecorder::default()
    }

    /// A recorder that additionally samples protocol state (active
    /// hosts, sketch mass) every `every` ticks. Each sample is an
    /// `O(hosts)` scan inside the engine.
    pub fn with_summary_every(every: u64) -> Self {
        TickRecorder {
            series: TickSeries::default(),
            summary_every: Some(every.max(1)),
        }
    }

    /// Consume the recorder and return the recording.
    pub fn finish(self) -> TickSeries {
        self.series
    }

    /// Borrow the recording so far.
    pub fn series(&self) -> &TickSeries {
        &self.series
    }
}

impl TelemetrySink for TickRecorder {
    fn on_run_start(&mut self, num_hosts: usize, arena_pooled: usize) {
        self.series.num_hosts = num_hosts;
        self.series.arena_pooled = arena_pooled;
    }

    fn on_tick(&mut self, sample: &TickSample) {
        self.series.ticks.push(*sample);
    }

    fn summary_every(&self) -> Option<u64> {
        self.summary_every
    }

    fn on_summary(&mut self, at: Time, active: u32, sketch_mass: f64) {
        self.series.summaries.push(SummarySample {
            tick: at.ticks(),
            active,
            sketch_mass,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: u64, dispatched: u64, frontier: u32) -> TickSample {
        TickSample {
            tick,
            dispatched,
            frontier,
            delivered: dispatched / 2,
            sent: dispatched,
            ..TickSample::default()
        }
    }

    #[test]
    fn recorder_accumulates_in_order() {
        let mut r = TickRecorder::with_summary_every(4);
        r.on_run_start(64, 3);
        r.on_tick(&sample(0, 4, 2));
        r.on_tick(&sample(3, 6, 5));
        r.on_summary(Time(0), 10, 1.5);
        assert_eq!(r.summary_every(), Some(4));
        let s = r.finish();
        assert_eq!(s.num_hosts, 64);
        assert_eq!(s.arena_pooled, 3);
        assert_eq!(s.dispatched(), 10);
        assert_eq!(s.delivered(), 5);
        assert_eq!(s.sent(), 10);
        assert_eq!(s.peak_frontier(), 5);
        assert_eq!(s.last_tick(), Some(3));
        assert_eq!(
            s.summaries,
            vec![SummarySample {
                tick: 0,
                active: 10,
                sketch_mass: 1.5
            }]
        );
    }

    #[test]
    fn empty_series_aggregates_to_zero() {
        let s = TickRecorder::new().finish();
        assert_eq!(s.dispatched(), 0);
        assert_eq!(s.peak_frontier(), 0);
        assert_eq!(s.last_tick(), None);
    }

    #[test]
    fn summary_interval_is_clamped_to_one() {
        assert_eq!(TickRecorder::with_summary_every(0).summary_every(), Some(1));
    }
}
