//! Deterministic JSON fragment writers.
//!
//! The exporters hand-roll their JSON for the same reason the scenario
//! reports do: byte-identical output across platforms and thread
//! counts. The rules mirror `pov_scenario`'s writer — shortest-
//! roundtrip floats forced to carry a decimal point, non-finite values
//! lowered to `null`, and strings escaped per RFC 8259.

/// Append `v` as a deterministic JSON number (or `null` when not
/// finite). The shortest-roundtrip form always carries a `.` or an
/// exponent so readers see the field as a float.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a JSON string literal with RFC 8259 escaping.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> String {
        let mut s = String::new();
        push_f64(&mut s, v);
        s
    }

    #[test]
    fn floats_always_carry_a_point_or_exponent() {
        assert_eq!(f(2.0), "2.0");
        assert_eq!(f(0.125), "0.125");
        assert_eq!(f(2.5e-8), "0.000000025");
        assert_eq!(f(2.58e6), "2580000.0");
        assert_eq!(f(-3.0), "-3.0");
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}e");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }
}
