//! Deterministic telemetry for the simulation engine: recorders that
//! capture what happens *inside* a wave, and exporters that render the
//! recordings for humans and tools.
//!
//! The engine's [`TelemetrySink`](pov_sim::TelemetrySink) trait is the
//! tap; this crate supplies the standard sinks and everything
//! downstream of them:
//!
//! * [`TickRecorder`] — the full per-tick time series of a run
//!   ([`TickSeries`]): alive count, queue depth, deliveries, drops,
//!   sends, churn, timers and the wave frontier per active tick, plus
//!   optional periodic protocol-state samples (active hosts, sketch
//!   mass).
//! * [`FlightRecorder`] — a bounded ring of the last N active ticks,
//!   dumped by the soak/bench harnesses when an assertion or
//!   regression gate trips ([`FLIGHT_SCHEMA`]).
//! * [`export`] — pure renderers from a [`TraceDoc`]: deterministic
//!   JSONL ([`TRACE_SCHEMA`]), Chrome trace-event JSON (loads in
//!   Perfetto / `chrome://tracing`), and a plain-text per-phase
//!   summary table.
//!
//! Everything here inherits the engine's determinism contract: output
//! is keyed by virtual ticks only and is byte-identical across thread
//! counts and platforms. See `docs/OBSERVABILITY.md` for schemas and
//! the overhead budget.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
mod flight;
mod fmt;
mod record;

pub use export::{CellTrace, PhaseSpan, TraceDoc};
pub use flight::FlightRecorder;
pub use record::{SummarySample, TickRecorder, TickSeries};

/// Schema tag stamped on every trace export (JSONL header, Chrome
/// document, summary table).
pub const TRACE_SCHEMA: &str = "pov_trace/v1";

/// Schema tag stamped on flight-recorder dumps.
pub const FLIGHT_SCHEMA: &str = "flight_recorder/v1";

#[cfg(test)]
mod smoke {
    use super::*;
    use pov_sim::{Medium, NodeLogic, SimBuilder, Time};
    use pov_topology::HostId;

    struct Forward {
        seen: bool,
    }

    impl NodeLogic for Forward {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut pov_sim::Ctx<'_, ()>) {
            if ctx.me() == HostId(0) {
                self.seen = true;
                ctx.broadcast(());
            }
        }
        fn on_message(&mut self, ctx: &mut pov_sim::Ctx<'_, ()>, from: HostId, _: ()) {
            if !self.seen {
                self.seen = true;
                ctx.broadcast_except(Some(from), ());
            }
        }
    }

    #[test]
    fn recorder_to_exporter_round_trip() {
        let mut rec = TickRecorder::new();
        let mut sim = SimBuilder::new(pov_topology::generators::special::cycle(12))
            .medium(Medium::PointToPoint)
            .telemetry(&mut rec)
            .build(|_| Forward { seen: false });
        sim.run_until(Time(40));
        let sent = sim.metrics().messages_sent;
        drop(sim);
        let series = rec.finish();
        assert_eq!(series.num_hosts, 12);
        assert_eq!(series.sent(), sent);
        assert!(series.peak_frontier() >= 1);
        let doc = TraceDoc {
            name: "smoke".into(),
            phases: vec![],
            cells: vec![CellTrace {
                protocol: "FLOOD".into(),
                seed: 0,
                rep: 0,
                window: 0,
                offset: 0,
                series,
            }],
        };
        let a = export::jsonl(&doc);
        let b = export::jsonl(&doc);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\": \"pov_trace/v1\""));
        assert!(export::chrome(&doc).contains("traceEvents"));
        assert!(export::summary(&doc).contains("run"));
    }
}
