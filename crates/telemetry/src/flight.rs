//! The flight recorder: a bounded ring of the last N active ticks.
//!
//! Soak and regression-gate failures are only debuggable if the run's
//! final moments survive the crash. The harness attaches a
//! [`FlightRecorder`] to a deterministic *replay* of the breaching
//! workload (never to the measured run — recording would perturb the
//! throughput being judged), then writes [`FlightRecorder::dump`] next
//! to the failure report.

use crate::export::tick_line;
use crate::fmt::push_str;
use crate::FLIGHT_SCHEMA;
use pov_sim::{TelemetrySink, TickSample};
use std::collections::VecDeque;

/// A [`TelemetrySink`] retaining only the last `window` active ticks.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    window: usize,
    ring: VecDeque<TickSample>,
    ticks_seen: u64,
    num_hosts: usize,
}

impl FlightRecorder {
    /// A recorder keeping the last `window` active ticks (at least 1).
    pub fn new(window: usize) -> Self {
        let window = window.max(1);
        FlightRecorder {
            window,
            ring: VecDeque::with_capacity(window),
            ticks_seen: 0,
            num_hosts: 0,
        }
    }

    /// Active ticks observed over the whole run (≥ the retained count).
    pub fn ticks_seen(&self) -> u64 {
        self.ticks_seen
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TickSample> {
        self.ring.iter()
    }

    /// Number of retained samples (≤ the window).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Serialize the retained window as deterministic JSONL: a header
    /// line stamped with [`FLIGHT_SCHEMA`], the breached `workload`
    /// name and the breach `reason`, then one line per retained tick
    /// (oldest first).
    pub fn dump(&self, workload: &str, reason: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\": ");
        push_str(&mut out, FLIGHT_SCHEMA);
        out.push_str(", \"workload\": ");
        push_str(&mut out, workload);
        out.push_str(", \"reason\": ");
        push_str(&mut out, reason);
        out.push_str(&format!(
            ", \"num_hosts\": {}, \"window\": {}, \"ticks_seen\": {}, \"retained\": {}}}\n",
            self.num_hosts,
            self.window,
            self.ticks_seen,
            self.ring.len()
        ));
        for s in &self.ring {
            tick_line(&mut out, s, 0);
        }
        out
    }
}

impl TelemetrySink for FlightRecorder {
    fn on_run_start(&mut self, num_hosts: usize, _arena_pooled: usize) {
        self.num_hosts = num_hosts;
    }

    fn on_tick(&mut self, sample: &TickSample) {
        if self.ring.len() == self.window {
            self.ring.pop_front();
        }
        self.ring.push_back(*sample);
        self.ticks_seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: u64) -> TickSample {
        TickSample {
            tick: t,
            dispatched: 1,
            ..TickSample::default()
        }
    }

    #[test]
    fn ring_keeps_only_the_last_window() {
        let mut fr = FlightRecorder::new(3);
        for t in 0..10 {
            fr.on_tick(&tick(t));
        }
        assert_eq!(fr.ticks_seen(), 10);
        assert_eq!(fr.len(), 3);
        let kept: Vec<u64> = fr.samples().map(|s| s.tick).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn dump_is_schema_stamped_jsonl() {
        let mut fr = FlightRecorder::new(2);
        fr.on_run_start(50, 0);
        fr.on_tick(&tick(4));
        fr.on_tick(&tick(5));
        fr.on_tick(&tick(6));
        let dump = fr.dump("lifecycle_wildfire", "throughput floor");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 retained ticks");
        assert!(lines[0].contains("\"schema\": \"flight_recorder/v1\""));
        assert!(lines[0].contains("\"workload\": \"lifecycle_wildfire\""));
        assert!(lines[0].contains("\"ticks_seen\": 3"));
        assert!(lines[0].contains("\"retained\": 2"));
        assert!(lines[1].contains("\"t\": 5"));
        assert!(lines[2].contains("\"t\": 6"));
        assert!(dump.ends_with('\n'));
    }

    #[test]
    fn zero_window_is_clamped() {
        let mut fr = FlightRecorder::new(0);
        fr.on_tick(&tick(1));
        fr.on_tick(&tick(2));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.samples().next().unwrap().tick, 2);
    }
}
