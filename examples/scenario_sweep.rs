//! Sweep churn intensity over a scenario file and print the
//! validity-vs-cost trade-off — the "price of validity" as a curve.
//!
//! Loads `scenarios/paper_baseline.scn`, adds SPANNINGTREE as a second
//! contender, and re-runs the batch at increasing failure fractions.
//! Since the `RunPlan` redesign a scenario carries *all* contenders,
//! so each batch runs both protocols against the same churn
//! realization — a paired comparison, no spec cloning. WILDFIRE's
//! deviation stays within sketch noise at every intensity while the
//! tree's blows up; the message columns show what that guarantee costs.
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use pov_scenario::{run_batch, ChurnSpec, ProtocolSpec, Scenario};

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/paper_baseline.scn");
    let text = std::fs::read_to_string(path).expect("scenario file present");
    let mut base: Scenario = text.parse().expect("scenario parses");
    base.protocols = vec![ProtocolSpec::Wildfire, ProtocolSpec::SpanningTree];
    base.seeds = vec![1, 2, 3];
    base.repetitions = 1;
    println!(
        "# churn sweep over scenario '{}' ({} on n = {})\n",
        base.name,
        base.topology.name(),
        base.n
    );
    println!(
        "{:>8}  {:>12}  {:>10}  {:>12}  {:>10}  {:>8}",
        "churn", "WF value", "WF dev", "ST value", "ST dev", "WF msgs"
    );

    for fraction in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let mut scn = base.clone();
        scn.churn = if fraction == 0.0 {
            ChurnSpec::None
        } else {
            ChurnSpec::Uniform {
                fraction,
                window: (0.0, 1.0),
            }
        };
        let report = run_batch(&scn, 4);
        let stats = |label: &str| {
            let section = report.section(label).expect("protocol section");
            let value = section.metric("value").expect("value metric").mean;
            let dev = section.metric("deviation").expect("deviation metric");
            (
                value,
                if dev.count > 0 { dev.mean } else { f64::NAN },
                section.metric("messages").expect("messages").mean,
            )
        };
        let (wf_value, wf_dev, wf_msgs) = stats("WILDFIRE");
        let (st_value, st_dev, _) = stats("SPANNINGTREE");
        println!(
            "{:>7.0}%  {:>12.1}  {:>9.2}x  {:>12.1}  {:>9.2}x  {:>8.0}",
            fraction * 100.0,
            wf_value,
            wf_dev,
            st_value,
            st_dev,
            wf_msgs
        );
    }
    println!(
        "\nWILDFIRE holds its deviation near 1.0x as churn grows; the tree's\n\
         declared value (and deviation) collapses — that gap is the price of\n\
         validity, and the msgs column is what you pay for it. Every row is a\n\
         paired comparison: both protocols saw the same failure draws."
    );
}
