//! Sweep churn intensity over a scenario file and print the
//! validity-vs-cost trade-off — the "price of validity" as a curve.
//!
//! Loads `scenarios/paper_baseline.scn`, then re-runs it at increasing
//! failure fractions for WILDFIRE and SPANNINGTREE. WILDFIRE's deviation
//! stays within sketch noise at every intensity while the tree's blows
//! up; the message columns show what that guarantee costs.
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use pov_scenario::{run_batch, ChurnSpec, ProtocolSpec, Scenario};

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/paper_baseline.scn");
    let text = std::fs::read_to_string(path).expect("scenario file present");
    let base: Scenario = text.parse().expect("scenario parses");
    println!(
        "# churn sweep over scenario '{}' ({} on n = {})\n",
        base.name,
        base.topology.name(),
        base.n
    );
    println!(
        "{:>8}  {:>12}  {:>10}  {:>12}  {:>10}  {:>8}",
        "churn", "WF value", "WF dev", "ST value", "ST dev", "WF msgs"
    );

    for fraction in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let mut row = Vec::new();
        let mut wf_msgs = 0.0;
        for protocol in [ProtocolSpec::Wildfire, ProtocolSpec::SpanningTree] {
            let mut scn = base.clone();
            scn.protocol = protocol;
            scn.churn = if fraction == 0.0 {
                ChurnSpec::None
            } else {
                ChurnSpec::Uniform {
                    fraction,
                    window: (0.0, 1.0),
                }
            };
            scn.seeds = vec![1, 2, 3];
            scn.repetitions = 1;
            let report = run_batch(&scn, 4);
            let value = report.metric("value").expect("value metric").mean;
            let dev = report.metric("deviation").expect("deviation metric");
            row.push((value, if dev.count > 0 { dev.mean } else { f64::NAN }));
            if protocol == ProtocolSpec::Wildfire {
                wf_msgs = report.metric("messages").expect("messages").mean;
            }
        }
        println!(
            "{:>7.0}%  {:>12.1}  {:>9.2}x  {:>12.1}  {:>9.2}x  {:>8.0}",
            fraction * 100.0,
            row[0].0,
            row[0].1,
            row[1].0,
            row[1].1,
            wf_msgs
        );
    }
    println!(
        "\nWILDFIRE holds its deviation near 1.0x as churn grows; the tree's\n\
         declared value (and deviation) collapses — that gap is the price of\n\
         validity, and the msgs column is what you pay for it."
    );
}
