//! Quickstart: issue one aggregate query over a churning P2P overlay and
//! let the oracle judge the answer.
//!
//! ```sh
//! cargo run --release -p pov-examples --bin quickstart
//! ```

use pov_core::prelude::*;

fn main() {
    // A 2,000-host Gnutella-like overlay with Zipf attribute values.
    let net = Network::build(TopologyKind::Gnutella, 2_000, 42);
    println!(
        "network: {} hosts, {} edges, D̂ = {}",
        net.graph().num_hosts(),
        net.graph().num_edges(),
        net.d_hat()
    );

    // 200 hosts (10%) will fail while the query runs.
    for protocol in [Protocol::SpanningTree, Protocol::Dag2, Protocol::Wildfire] {
        let answer = net
            .query(Aggregate::Count)
            .churn(200)
            .repetitions(16)
            .run(protocol);
        let v = answer.value.expect("hq survives in this demo");
        let (lo, hi) = answer.verdict.bounds.expect("count always bounded");
        println!(
            "{:<14} count = {:>7.1}   valid range [{:.0}, {:.0}]   within: {:<5}   messages: {}",
            protocol.name(),
            v,
            lo,
            hi,
            answer.verdict.within_bounds,
            answer.metrics.messages_sent,
        );
    }

    // Min/max are exactly Single-Site Valid under WILDFIRE (Thm 5.1).
    let answer = net.query(Aggregate::Max).churn(200).run(Protocol::Wildfire);
    println!(
        "WILDFIRE max = {:?}, strictly valid: {}",
        answer.value,
        answer.verdict.is_valid()
    );
}
