//! Theorem 4.4, live: the cycle-with-spur instance on which a single
//! failure makes SPANNINGTREE's answer arbitrarily bad while WILDFIRE
//! holds the line.
//!
//! ```sh
//! cargo run --release -p pov-examples --bin adversarial_tree
//! ```

use pov_core::pov_oracle::host_sets;
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{runner, ProtocolKind};
use pov_core::pov_topology::analysis;
use pov_core::pov_topology::generators::special;
use pov_core::prelude::*;

fn main() {
    println!("Theorem 4.4: for each e ≥ 2 there are instances where best-effort");
    println!("protocols return q(H) with |H| ≤ |HC|/e after ONE failure.\n");

    for n in [8usize, 32, 128] {
        let (graph, hq, victim) = special::cycle_with_spur(n);
        let total = graph.num_hosts();
        let values = vec![1u64; total];
        let d = analysis::diameter_exact(&graph);
        let churn = ChurnPlan::none().with_failure(Time(3), victim);
        let cfg = RunPlan::query(Aggregate::Count)
            .d_hat(d + 2)
            .repetitions(16)
            .churn(churn)
            .seed(1)
            .from_host(hq);

        let st = runner::run(ProtocolKind::SpanningTree, &graph, &values, &cfg);
        let dag = runner::run(ProtocolKind::Dag { k: 2 }, &graph, &values, &cfg);
        let wf = runner::run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &graph,
            &values,
            &cfg,
        );
        let sets = host_sets(&graph, &st.trace, hq, Time::ZERO, Time(2 * (d as u64 + 2)));

        println!(
            "cycle of {} + spur (|H| = {total}), victim h1 fails at t=3:",
            2 * n + 2
        );
        println!(
            "  |HC| = {} (everyone but the victim stays reachable)",
            sets.hc_len()
        );
        println!(
            "  SPANNINGTREE : {:>7.1}  <- lost the long arc",
            st.value.unwrap()
        );
        println!("  DAG(k=2)     : {:>7.1}", dag.value.unwrap());
        println!(
            "  WILDFIRE     : {:>7.1}  (FM estimate of {} hosts)\n",
            wf.value.unwrap(),
            sets.hc_len()
        );
    }
}
