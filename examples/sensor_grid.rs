//! Sensor-network scenario (Example 1.1 at scale): count the active
//! sensors in a grid over a radio medium while sensors die mid-query.
//!
//! Shows the full §6 comparison on one instance: the three protocols'
//! answers against the ORACLE's Single-Site-Validity bounds, plus the
//! communication price WILDFIRE pays — and how min queries escape it.
//!
//! ```sh
//! cargo run --release -p pov-examples --bin sensor_grid
//! ```

use pov_core::prelude::*;

fn main() {
    let side = 40; // 1,600 sensors
    let net = Network::build(TopologyKind::Grid, side * side, 11);
    let failures = side * side / 10;
    println!(
        "sensor grid {side}×{side} = {} hosts, radio medium, {failures} failures mid-query\n",
        net.graph().num_hosts()
    );

    println!("-- count query --");
    let mut wf_msgs = 0;
    let mut st_msgs = 0;
    for protocol in [Protocol::SpanningTree, Protocol::Dag2, Protocol::Wildfire] {
        let answer = net
            .query(Aggregate::Count)
            .medium(Medium::Radio)
            .churn(failures)
            .repetitions(16)
            .run(protocol);
        let (lo, hi) = answer.verdict.bounds.expect("bounded");
        println!(
            "{:<14} v = {:>8.1}   oracle [{:>6.0}, {:>6.0}]   within: {:<5}   radio msgs: {}",
            protocol.name(),
            answer.value.unwrap(),
            lo,
            hi,
            answer.verdict.within_bounds,
            answer.metrics.messages_sent,
        );
        match protocol {
            Protocol::Wildfire => wf_msgs = answer.metrics.messages_sent,
            Protocol::SpanningTree => st_msgs = answer.metrics.messages_sent,
            _ => {}
        }
    }
    println!(
        "price of validity (count): {:.1}x SPANNINGTREE messages\n",
        wf_msgs as f64 / st_msgs as f64
    );

    println!("-- min query (early aggregation pays for itself, §6.6) --");
    let wf_min = net
        .query(Aggregate::Min)
        .medium(Medium::Radio)
        .churn(failures)
        .run(Protocol::Wildfire);
    let st_min = net
        .query(Aggregate::Min)
        .medium(Medium::Radio)
        .churn(failures)
        .run(Protocol::SpanningTree);
    println!(
        "WILDFIRE min = {:?} valid={} ({} msgs); SPANNINGTREE min = {:?} ({} msgs)",
        wf_min.value,
        wf_min.verdict.is_valid(),
        wf_min.metrics.messages_sent,
        st_min.value,
        st_min.metrics.messages_sent,
    );
    println!(
        "min-query ratio: {:.2}x — validity is nearly free for duplicate-insensitive aggregates",
        wf_min.metrics.messages_sent as f64 / st_min.metrics.messages_sent as f64
    );
}
