//! P2P network monitoring (§1, §2: "aggregate queries can be used to
//! deduce usage trends in P2P networks — e.g. average load on hosts").
//!
//! A continuous average-load query runs window after window over an
//! overlay that keeps losing hosts (Continuous Single-Site Validity,
//! §4.2), while a capture–recapture estimator (§5.4) tracks the
//! shrinking population size in parallel.
//!
//! ```sh
//! cargo run --release -p pov-examples --bin p2p_monitoring
//! ```

use pov_core::capture_recapture::{JollySeber, PopulationModel};
use pov_core::continuous::{hc_decay, run_continuous, ContinuousConfig};
use pov_core::prelude::*;

fn main() {
    let n = 1_500;
    let net = Network::build(TopologyKind::Gnutella, n, 7);
    let d_hat = net.d_hat();
    let window = 2 * d_hat as u64 + 5;
    let windows = 6;

    // 20% of the overlay churns away over the monitoring horizon.
    let churn = ChurnPlan::uniform_failures(
        n,
        n / 5,
        Time(0),
        Time(window * windows as u64),
        HostId(0),
        99,
    );

    println!("== continuous avg-load query (window = {window} ticks) ==");
    let cfg = ContinuousConfig {
        aggregate: Aggregate::Average,
        window,
        windows,
        d_hat,
        c: 16,
        hq: HostId(0),
        seed: 3,
    };
    let reports = run_continuous(net.graph(), net.values(), &churn, &cfg);
    for r in &reports {
        println!(
            "t={:<5} avg ≈ {:>7.2}   window HC = {:<5} HU = {:<5} factor {:>5.2}   msgs {}",
            r.start,
            r.value.unwrap_or(f64::NAN),
            r.hc_size,
            r.hu_size,
            r.verdict.approx_factor.unwrap_or(f64::INFINITY),
            r.messages,
        );
    }

    println!("\n== why validity is judged per window (§4.2) ==");
    // Under *turnover* — a third of the overlay rotates out while fresh
    // hosts rotate in — the naive whole-interval HC empties while the
    // windowed one keeps tracking the live population. (A uniform random
    // overlay keeps the rotated population connected; preferential-
    // attachment graphs would also lose connectivity when the early hubs
    // leave, a separate effect.)
    let turnover_graph = pov_core::pov_topology::generators::random_average_degree(n, 8.0, 99);
    let horizon = window * windows as u64;
    let third = n as u32 / 3;
    let mut turnover = ChurnPlan::none();
    for i in 1..third {
        turnover = turnover.with_failure(Time(i as u64 * horizon / third as u64), HostId(i));
    }
    for i in third..2 * third {
        let j = i - third;
        turnover = turnover.with_join(Time(j as u64 * horizon / third as u64), HostId(i));
    }
    println!("window   |HC| over [t-W, t]   |HC| over [0, t] (naive)");
    for (w, (windowed, cumulative)) in
        hc_decay(&turnover_graph, &turnover, HostId(0), window, windows)
            .into_iter()
            .enumerate()
    {
        println!("{w:>6}   {windowed:>18}   {cumulative:>24}");
    }

    println!("\n== capture–recapture size estimation (Jolly–Seber, §5.4) ==");
    let mut pop = PopulationModel::new(n, 0.03, 10.0, 5);
    let mut js = JollySeber::new(150, 800);
    for period in 0..10 {
        pop.step();
        let est = js.observe(&mut pop);
        match est.estimate {
            Some(e) => println!(
                "period {period:>2}: Ĥ = {e:>8.0}   (truth {:>5}, marked {:>4}, recaptured {:>3})",
                pop.size(),
                est.marked,
                est.recaptured,
            ),
            None => println!(
                "period {period:>2}: marking... (truth {:>5}, marked {:>4})",
                pop.size(),
                est.marked
            ),
        }
    }
    println!("probe/sample messages spent: {}", js.messages);
}
