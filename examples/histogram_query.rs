//! §7 "future work", implemented: complex aggregates over WILDFIRE via
//! duplicate-insensitive extension operators — a full value histogram
//! (bucket counts, quantiles, average) and a KMV distinct count, each
//! from a single convergecast, each surviving churn the way WILDFIRE
//! count does.
//!
//! ```sh
//! cargo run --release -p pov-examples --bin histogram_query
//! ```

use pov_core::pov_protocols::runner::run_wildfire_operator;
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::Operator;
use pov_core::prelude::*;
use pov_core::workload;

fn main() {
    let n = 2_000;
    let net = Network::build(TopologyKind::Gnutella, n, 23);
    let truth = net.values();
    println!(
        "{} hosts; true avg = {:.1}, true max = {}",
        n,
        truth.iter().sum::<u64>() as f64 / n as f64,
        truth.iter().max().unwrap()
    );

    let cfg = RunPlan::query(Aggregate::Count)
        .d_hat(net.d_hat())
        .repetitions(16)
        .churn(ChurnPlan::uniform_failures(
            n,
            n / 10,
            Time::ZERO,
            Time(2 * net.d_hat() as u64),
            HostId(0),
            5,
        ))
        .seed(9);

    println!("\n== value histogram over WILDFIRE (10% churn) ==");
    let out = run_wildfire_operator(
        Operator::ValueHistogram {
            min: workload::PAPER_MIN,
            max: workload::PAPER_MAX,
            buckets: 10,
        },
        WildfireOpts::default(),
        net.graph(),
        net.values(),
        &cfg,
    );
    let partial = out.partial.expect("hq survived");
    let hist = partial.as_histogram().expect("histogram partial");
    for (i, est) in hist.bucket_estimates().iter().enumerate() {
        let (lo, hi) = hist.buckets().range_of(i);
        let true_count = truth.iter().filter(|&&v| v >= lo && v <= hi).count();
        println!(
            "  [{lo:>3}, {hi:>3}]  est {est:>8.1}   true {true_count:>5}  {}",
            "#".repeat((est / 25.0).min(60.0) as usize)
        );
    }
    println!(
        "  est avg = {:.1}   est median = {:.1}   est p90 = {:.1}   ({} messages)",
        hist.average().unwrap(),
        hist.quantile(0.5).unwrap(),
        hist.quantile(0.9).unwrap(),
        out.metrics.messages_sent,
    );

    println!("\n== KMV distinct count vs FM count (same churn) ==");
    let kmv = run_wildfire_operator(
        Operator::KmvCount { k: 128 },
        WildfireOpts::default(),
        net.graph(),
        net.values(),
        &cfg,
    );
    let fm = run_wildfire_operator(
        Operator::Standard,
        WildfireOpts::default(),
        net.graph(),
        net.values(),
        &cfg,
    );
    println!(
        "  KMV(k=128): {:>8.1}   FM(c=16): {:>8.1}   (population {} minus churn)",
        kmv.value.unwrap(),
        fm.value.unwrap(),
        n
    );
}
