//! Shared helpers for the cross-crate integration tests.

use pov_core::pov_topology::{Graph, GraphBuilder, HostId};

/// The Fig 5 / Example 5.1 four-host P2P network:
/// `w(h0) — x(h1)`, `w — y(h2)`, `x — z(h3)`, `y — z(h3)`.
pub fn example_5_1_graph() -> Graph {
    let mut b = GraphBuilder::with_hosts(4);
    b.add_edge(HostId(0), HostId(1));
    b.add_edge(HostId(0), HostId(2));
    b.add_edge(HostId(1), HostId(3));
    b.add_edge(HostId(2), HostId(3));
    b.build()
}

/// The Fig 5 attribute values: `A_w = 5, A_x = 15, A_y = 1, A_z = 25`.
pub fn example_5_1_values() -> Vec<u64> {
    vec![5, 15, 1, 25]
}

/// The Example 1.1 sensor network: 16 sensors in a 4×4 grid (Moore
/// connectivity, matching Fig 1's dense sensor field).
pub fn example_1_1_graph() -> Graph {
    pov_core::pov_topology::generators::grid_square(4)
}
