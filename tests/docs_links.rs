//! Relative-link checker for the repo's markdown documentation.
//!
//! Every `[text](target)` in the tracked documents must resolve:
//! relative targets (optionally with a `#fragment`) must exist on disk
//! relative to the document that links them. A doc rename or move that
//! leaves a dangling `docs/...` link fails here instead of rotting
//! silently. External (`http://`, `https://`, `mailto:`) and
//! pure-fragment (`#section`) links are out of scope — the build
//! environment is offline and fragments are editor-dependent.

use std::path::{Path, PathBuf};

/// The documents whose outgoing links are checked, relative to the
/// repo root (`CARGO_MANIFEST_DIR` of the root `pov_integration`
/// package).
const DOCS: &[&str] = &[
    "README.md",
    "ROADMAP.md",
    "PAPER.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/BENCHMARKING.md",
    "docs/OBSERVABILITY.md",
    "docs/SCALING.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract `(link_text, target)` pairs from inline markdown links.
/// Skips image links (`![alt](src)`) no differently — their targets
/// must resolve too — but ignores fenced code blocks, where brackets
/// and parens are code, not links.
fn links(markdown: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'[' {
                if let Some(close) = line[i..].find("](") {
                    let text_end = i + close;
                    let target_start = text_end + 2;
                    if let Some(end) = line[target_start..].find(')') {
                        let text = line[i + 1..text_end].to_string();
                        let target = line[target_start..target_start + end].to_string();
                        out.push((text, target));
                        i = target_start + end + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    out
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn relative_markdown_links_resolve() {
    let root = repo_root();
    let mut failures = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read tracked doc {doc}: {e}"));
        let dir = path.parent().unwrap_or(Path::new("."));
        for (label, target) in links(&text) {
            if is_external(&target) || target.is_empty() {
                continue;
            }
            // Drop a #fragment; the file part must still exist.
            let file_part = target.split('#').next().unwrap_or("");
            if file_part.is_empty() {
                continue;
            }
            if !dir.join(file_part).exists() {
                failures.push(format!("{doc}: [{label}]({target}) -> missing {file_part}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "dangling doc links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn docs_cross_link_each_other() {
    // The operator docs must stay discoverable: the README links both
    // docs/ files, and each doc links back to at least one sibling.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    let readme_targets: Vec<String> = links(&readme).into_iter().map(|(_, t)| t).collect();
    for required in [
        "docs/ARCHITECTURE.md",
        "docs/BENCHMARKING.md",
        "docs/OBSERVABILITY.md",
        "docs/SCALING.md",
    ] {
        assert!(
            readme_targets
                .iter()
                .any(|t| t.split('#').next() == Some(required)),
            "README.md does not link {required}"
        );
    }
    let arch = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md")).expect("ARCHITECTURE");
    for sibling in ["BENCHMARKING.md", "OBSERVABILITY.md"] {
        assert!(
            links(&arch)
                .iter()
                .any(|(_, t)| t.split('#').next() == Some(sibling)),
            "docs/ARCHITECTURE.md does not link its sibling {sibling}"
        );
    }
}

#[test]
fn link_extractor_handles_the_grammar() {
    let md = "see [a](x.md) and [b](docs/y.md#frag), skip [c](https://e.com)\n\
              ```\n[not](a-link.md)\n```\n\
              ![img](pic.png)";
    let got = links(md);
    assert_eq!(
        got,
        vec![
            ("a".to_string(), "x.md".to_string()),
            ("b".to_string(), "docs/y.md#frag".to_string()),
            ("c".to_string(), "https://e.com".to_string()),
            ("img".to_string(), "pic.png".to_string()),
        ]
    );
}
