//! Cross-crate validity semantics: every §4 definition exercised through
//! the full stack (topology → sim → protocol → oracle).

use pov_core::pov_protocols::{runner, ProtocolKind};
use pov_core::pov_sketch::stats;
use pov_core::prelude::*;

/// WILDFIRE min/max is Single-Site Valid across topologies and churn
/// levels (Theorem 5.1 at integration scale).
#[test]
fn wildfire_min_max_valid_across_topologies() {
    for kind in [
        TopologyKind::Gnutella,
        TopologyKind::Random,
        TopologyKind::PowerLaw,
        TopologyKind::Grid,
    ] {
        let net = Network::build(kind, 300, 21);
        for (aggregate, churn) in [
            (Aggregate::Min, 0),
            (Aggregate::Max, 0),
            (Aggregate::Min, 30),
            (Aggregate::Max, 60),
        ] {
            let answer = net.query(aggregate).churn(churn).run(Protocol::Wildfire);
            assert!(
                answer.verdict.is_valid(),
                "{} {} churn={churn}: {:?}",
                kind.name(),
                aggregate.name(),
                answer.verdict
            );
        }
    }
}

/// WILDFIRE count/sum satisfies Approximate Single-Site Validity with a
/// modest factor (far below the Theorem 5.3 guarantee of c).
#[test]
fn wildfire_count_sum_approximately_valid() {
    let net = Network::build(TopologyKind::Random, 400, 33);
    for aggregate in [Aggregate::Count, Aggregate::Sum, Aggregate::Average] {
        for churn in [0usize, 40] {
            let answer = net
                .query(aggregate)
                .churn(churn)
                .repetitions(16)
                .run(Protocol::Wildfire);
            assert!(
                answer.verdict.is_approx_valid(3.0),
                "{} churn={churn}: factor {:?}",
                aggregate.name(),
                answer.verdict.approx_factor
            );
        }
    }
}

/// Best-effort protocols violate validity under churn while WILDFIRE
/// does not — the paper's central comparison, via the public facade.
#[test]
fn best_effort_loses_validity_where_wildfire_keeps_it() {
    let net = Network::build(TopologyKind::Grid, 400, 44);
    let churn = 60; // 15% of hosts
    let mut st_deviations = Vec::new();
    let mut wf_deviations = Vec::new();
    for seed in 0..5 {
        let st = net
            .query(Aggregate::Count)
            .churn(churn)
            .seed(seed)
            .run(Protocol::SpanningTree);
        let wf = net
            .query(Aggregate::Count)
            .churn(churn)
            .seed(seed)
            .repetitions(16)
            .run(Protocol::Wildfire);
        st_deviations.push(st.verdict.approx_factor.unwrap_or(f64::INFINITY));
        wf_deviations.push(wf.verdict.approx_factor.unwrap_or(f64::INFINITY));
    }
    let st_mean = stats::mean(&st_deviations);
    let wf_mean = stats::mean(&wf_deviations);
    assert!(
        st_mean > wf_mean,
        "ST deviation {st_mean:.2}x should exceed WILDFIRE's {wf_mean:.2}x"
    );
    assert!(wf_mean < 2.0, "WILDFIRE deviation {wf_mean:.2}x too large");
}

/// DAG sits between SPANNINGTREE and WILDFIRE: redundancy helps, but the
/// guarantee is still best-effort.
#[test]
fn dag_improves_over_tree_under_churn() {
    let net = Network::build(TopologyKind::Gnutella, 500, 55);
    let churn = 75;
    let mut st_count = 0.0;
    let mut dag_count = 0.0;
    let trials = 5;
    for seed in 0..trials {
        let st = net
            .query(Aggregate::Count)
            .churn(churn)
            .seed(seed)
            .run(Protocol::SpanningTree);
        let dag = net
            .query(Aggregate::Count)
            .churn(churn)
            .seed(seed)
            .repetitions(16)
            .run(Protocol::Dag3);
        st_count += st.value.unwrap();
        dag_count += dag.value.unwrap();
    }
    assert!(
        dag_count > st_count * 0.9,
        "DAG(3) mean count {:.0} should not trail ST {:.0} meaningfully",
        dag_count / trials as f64,
        st_count / trials as f64
    );
}

/// The oracle's interval bounds respond to the churn level: HC shrinks
/// monotonically (statistically) with R while HU stays fixed when no
/// hosts join.
#[test]
fn oracle_bounds_track_churn_level() {
    let net = Network::build(TopologyKind::Random, 400, 66);
    let mut last_hc = usize::MAX;
    for churn in [0usize, 40, 120] {
        let answer = net
            .query(Aggregate::Count)
            .churn(churn)
            .run(Protocol::SpanningTree);
        assert_eq!(answer.hu_size, 400, "no joins: HU = everyone");
        assert!(
            answer.hc_size <= last_hc,
            "HC must shrink with churn: {} -> {}",
            last_hc,
            answer.hc_size
        );
        assert!(answer.hc_size <= 400 - churn + 1);
        last_hc = answer.hc_size;
    }
}

/// RANDOMIZEDREPORT achieves Approximate SSV at reduced cost (§4.3).
#[test]
fn randomized_report_cheaper_and_approximately_valid() {
    let net = Network::build(TopologyKind::Random, 500, 77);
    let full = runner::run(
        ProtocolKind::AllReport(pov_core::pov_protocols::allreport::ReportRouting::Direct),
        net.graph(),
        net.values(),
        &RunPlan::query(Aggregate::Count).d_hat(net.d_hat()).seed(1),
    );
    let sampled = runner::run(
        ProtocolKind::RandomizedReport { p: 0.3 },
        net.graph(),
        net.values(),
        &RunPlan::query(Aggregate::Count).d_hat(net.d_hat()).seed(1),
    );
    assert_eq!(full.value, Some(500.0));
    let est = sampled.value.unwrap();
    assert!(
        (350.0..650.0).contains(&est),
        "sampled estimate {est} too far from 500"
    );
    assert!(
        sampled.metrics.messages_sent < full.metrics.messages_sent,
        "sampling must save messages: {} vs {}",
        sampled.metrics.messages_sent,
        full.metrics.messages_sent
    );
}

/// Gossip is the eventual-consistency foil: accurate when static, but
/// its mass-loss under churn has no validity envelope at all.
#[test]
fn gossip_baseline_contrast() {
    let net = Network::build(TopologyKind::Random, 200, 88);
    let cfg = RunPlan::query(Aggregate::Average)
        .d_hat(net.d_hat())
        .seed(3);
    let out = runner::run(
        ProtocolKind::Gossip { rounds: 120 },
        net.graph(),
        net.values(),
        &cfg,
    );
    let truth = Aggregate::Average.ground_truth(net.values()).unwrap();
    let v = out.value.expect("declared");
    assert!(
        (v - truth).abs() / truth < 0.15,
        "static gossip should converge: {v} vs {truth}"
    );
}
