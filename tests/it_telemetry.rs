//! Cross-crate integration tests for the telemetry layer: the trace
//! runner against the real `.scn` files CI traces, the determinism
//! contract across thread counts, and the hard bar that telemetry never
//! perturbs a scenario report.

use pov_scenario::{run_batch, trace_batch, Json, Scenario};
use pov_telemetry::{export, FLIGHT_SCHEMA, TRACE_SCHEMA};
use std::path::PathBuf;

fn scn(name: &str) -> Scenario {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
        .parse()
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// The acceptance bar for `repro trace`: the CI smoke scenario's trace
/// files are byte-identical for any `--threads` value, in every export
/// format.
#[test]
fn smoke_trace_is_byte_identical_across_thread_counts() {
    let scenario = scn("smoke.scn");
    let base = trace_batch(&scenario, 1);
    assert!(!base.cells.is_empty());
    let (jsonl, chrome, summary) = (
        export::jsonl(&base),
        export::chrome(&base),
        export::summary(&base),
    );
    for threads in [2, 8] {
        let doc = trace_batch(&scenario, threads);
        assert_eq!(export::jsonl(&doc), jsonl, "jsonl, threads = {threads}");
        assert_eq!(export::chrome(&doc), chrome, "chrome, threads = {threads}");
        assert_eq!(
            export::summary(&doc),
            summary,
            "summary, threads = {threads}"
        );
    }
}

/// The Chrome exporter's output must be a JSON document a trace viewer
/// will load: parseable, with a `traceEvents` array and the schema
/// stamp.
#[test]
fn chrome_trace_is_valid_json_with_schema() {
    let doc = trace_batch(&scn("smoke.scn"), 4);
    let parsed = Json::parse(&export::chrome(&doc)).expect("chrome trace parses as JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(
        events.len() > doc.cells.len(),
        "events beyond cell metadata"
    );
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some(TRACE_SCHEMA)
    );
}

/// The JSONL header carries the schema version and the scenario name —
/// what CI greps for after tracing.
#[test]
fn jsonl_header_is_schema_stamped() {
    let doc = trace_batch(&scn("soak_lifecycle.scn"), 2);
    let out = export::jsonl(&doc);
    let header = out.lines().next().expect("header line");
    assert!(
        header.contains(&format!("\"schema\": \"{TRACE_SCHEMA}\"")),
        "{header}"
    );
    assert!(header.contains("\"name\": "), "{header}");
    // A phased scenario's spans ride in the header.
    assert!(header.contains("\"phases\": [{"), "{header}");
    // Schema constants stay distinct — a flight dump is not a trace.
    assert_ne!(TRACE_SCHEMA, FLIGHT_SCHEMA);
}

/// The tentpole's hard bar: telemetry configuration must never touch a
/// report. Adding a `[telemetry]` section to a scenario leaves
/// `run_batch`'s JSON byte-identical — the section only feeds
/// `trace_batch`.
#[test]
fn telemetry_section_never_perturbs_the_report() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios/smoke.scn");
    let text = std::fs::read_to_string(path).expect("smoke.scn");
    let plain: Scenario = text.parse().expect("valid scenario");
    let with_telemetry: Scenario =
        format!("{text}\n[telemetry]\nsummary_every = 2\nflight_window = 64\n")
            .parse()
            .expect("valid scenario with [telemetry]");
    assert!(plain.telemetry.is_none());
    assert!(with_telemetry.telemetry.is_some());
    assert_eq!(
        run_batch(&plain, 2).to_json().render(),
        run_batch(&with_telemetry, 2).to_json().render(),
        "[telemetry] leaked into the report"
    );
}

/// Tracing a scenario and *then* running its batch (or vice versa)
/// yields the same report bytes as running the batch alone — recording
/// shares no state with the measured runs.
#[test]
fn tracing_does_not_perturb_a_subsequent_report() {
    let scenario = scn("smoke.scn");
    let before = run_batch(&scenario, 2).to_json().render();
    let _trace = trace_batch(&scenario, 2);
    let after = run_batch(&scenario, 2).to_json().render();
    assert_eq!(before, after);
}
