//! End-to-end runs of every experiment driver at smoke scale, plus the
//! continuous-query and size-estimation machinery.

use pov_core::capture_recapture::{JollySeber, PopulationModel};
use pov_core::continuous::{run_continuous, ContinuousConfig};
use pov_core::experiments::{ablation, fig06, fig10, fig11, fig12, fig13, price, validity};
use pov_core::prelude::*;
use pov_core::ring_estimator::RingEstimator;

#[test]
fn fig06_driver_end_to_end() {
    let rows = fig06::run(&fig06::Config::smoke());
    assert!(!rows.is_empty());
    let rendered = fig06::table(&rows).to_string();
    assert!(rendered.contains("Fig 6"));
    assert!(rendered.contains("count"));
    assert!(rendered.contains("sum"));
}

#[test]
fn validity_driver_end_to_end() {
    let cfg = validity::Config::smoke(TopologyKind::Random, Aggregate::Count, 300);
    let rows = validity::run(&cfg);
    let rendered = validity::table(&cfg, &rows).to_string();
    assert!(rendered.contains("WILDFIRE"));
    assert!(rendered.contains("ORACLE"));
    // Every row carries all four protocols.
    for row in &rows {
        assert_eq!(row.protocols.len(), 4);
    }
}

#[test]
fn fig10_fig11_drivers_end_to_end() {
    let rows10 = fig10::run(&fig10::Config::smoke());
    assert!(fig10::table(&rows10).to_string().contains("Fig 10"));
    assert!(!fig10::price_ratios(&rows10).is_empty());

    let rows11 = fig11::run(&fig11::Config::smoke());
    assert!(fig11::table(&rows11).to_string().contains("Fig 11"));
}

#[test]
fn fig12_fig13_drivers_end_to_end() {
    let rows12 = fig12::run(&fig12::Config::smoke());
    assert!(fig12::table(&rows12).to_string().contains("Fig 12"));
    assert_eq!(fig12::max_ratios(&rows12).len(), 2);

    let cfg13 = fig13::Config::smoke();
    let time_rows = fig13::run_time_cost(&cfg13);
    let profiles = fig13::run_profile(&cfg13);
    assert!(fig13::time_table(&time_rows)
        .to_string()
        .contains("Fig 13a"));
    assert!(fig13::profile_table(&profiles)
        .to_string()
        .contains("Fig 13b"));
}

#[test]
fn price_and_ablation_drivers_end_to_end() {
    let rows = price::run(&price::Config::smoke());
    assert!(price::table(&rows)
        .to_string()
        .contains("price of validity"));

    let rows = ablation::run(&ablation::Config::smoke());
    assert_eq!(rows.len(), 4);
    assert!(ablation::table(&rows).to_string().contains("Ablation"));
}

#[test]
fn continuous_query_over_long_churn() {
    let net = Network::build(TopologyKind::Random, 250, 3);
    let d_hat = net.d_hat();
    let window = 2 * d_hat as u64 + 4;
    let churn = ChurnPlan::uniform_failures(250, 50, Time(0), Time(window * 4), HostId(0), 9);
    let cfg = ContinuousConfig {
        aggregate: Aggregate::Max,
        window,
        windows: 4,
        d_hat,
        c: 8,
        hq: HostId(0),
        seed: 1,
    };
    let reports = run_continuous(net.graph(), net.values(), &churn, &cfg);
    assert_eq!(reports.len(), 4);
    for r in &reports {
        assert!(
            r.verdict.is_valid(),
            "window {:?}: max must stay valid, got {:?}",
            r.start,
            r.verdict
        );
    }
}

#[test]
fn capture_recapture_tracks_churning_population() {
    let mut pop = PopulationModel::new(5_000, 0.02, 60.0, 7);
    let mut js = JollySeber::new(400, 2_500);
    let mut ok = 0;
    let mut total = 0;
    for t in 0..20 {
        pop.step();
        let est = js.observe(&mut pop);
        if t >= 3 {
            total += 1;
            if let Some(e) = est.estimate {
                let truth = pop.size() as f64;
                if e > 0.3 * truth && e < 3.0 * truth {
                    ok += 1;
                }
            }
        }
    }
    assert!(
        ok * 10 >= total * 7,
        "only {ok}/{total} estimates within 3x of truth"
    );
}

#[test]
fn ring_estimator_continuous_validity() {
    let mut est = RingEstimator::new(3_000, 200, 5);
    for step in 0..10 {
        est.churn_step(0.03, 40);
        let truth = est.true_size() as f64;
        let e = est.estimate_mean(20).expect("ring non-empty");
        assert!(
            e > truth / 3.0 && e < truth * 3.0,
            "step {step}: estimate {e} vs truth {truth}"
        );
    }
}

#[test]
fn facade_round_trip_all_aggregates() {
    let net = Network::build(TopologyKind::Gnutella, 300, 12);
    for aggregate in [
        Aggregate::Min,
        Aggregate::Max,
        Aggregate::Count,
        Aggregate::Sum,
        Aggregate::Average,
    ] {
        let answer = net.query(aggregate).repetitions(16).run(Protocol::Wildfire);
        let v = answer.value.expect("declared");
        assert!(v.is_finite() && v >= 0.0, "{}: {v}", aggregate.name());
        assert!(answer.metrics.messages_sent > 0);
    }
}

#[test]
fn radio_medium_through_facade() {
    let net = Network::build(TopologyKind::Grid, 225, 8);
    let p2p = net.query(Aggregate::Count).run(Protocol::Wildfire);
    let radio = net
        .query(Aggregate::Count)
        .medium(Medium::Radio)
        .run(Protocol::Wildfire);
    assert!(
        radio.metrics.messages_sent < p2p.metrics.messages_sent,
        "radio broadcast must be cheaper: {} vs {}",
        radio.metrics.messages_sent,
        p2p.metrics.messages_sent
    );
}
