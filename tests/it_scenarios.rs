//! Integration coverage for the shipped scenario library: every `.scn`
//! file under `scenarios/` must parse, and the smoke scenario must run
//! deterministically across thread counts end to end (file → parser →
//! batch runner → JSON).

use pov_scenario::{run_batch, Scenario};

fn scenario_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn load(name: &str) -> Scenario {
    let path = scenario_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.parse()
        .unwrap_or_else(|e| panic!("parsing {name}: {e}"))
}

#[test]
fn every_shipped_scenario_parses() {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(scenario_dir()).expect("scenarios/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("scn") {
            let text = std::fs::read_to_string(&path).expect("readable");
            let scn: Scenario = text
                .parse()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(scn.num_runs() > 0, "{}", path.display());
            names.push(scn.name);
        }
    }
    // The library the issue calls for: paper baseline + 4 new regimes
    // + the CI smoke file.
    names.sort();
    assert_eq!(
        names,
        vec![
            "adversarial-root",
            "correlated-failure",
            "flash-crowd",
            "paper-baseline",
            "partition-heal",
            "smoke",
        ]
    );
}

#[test]
fn smoke_scenario_runs_identically_on_any_thread_count() {
    let scn = load("smoke.scn");
    let sequential = run_batch(&scn, 1);
    let parallel = run_batch(&scn, 4);
    assert_eq!(
        sequential.to_json().render(),
        parallel.to_json().render(),
        "parallel batch must be byte-identical to sequential"
    );
    assert_eq!(sequential.runs, scn.num_runs());
    assert_eq!(sequential.declared_fraction, 1.0);
}

#[test]
fn smoke_report_shape_is_stable() {
    let scn = load("smoke.scn");
    let report = run_batch(&scn, 2);
    let json = report.to_json().render();
    for field in [
        "\"scenario\"",
        "\"protocol\"",
        "\"churn_model\"",
        "\"declared_fraction\"",
        "\"valid_fraction\"",
        "\"metrics\"",
        "\"deviation\"",
        "\"records\"",
    ] {
        assert!(json.contains(field), "missing {field} in report JSON");
    }
}
