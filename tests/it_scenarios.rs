//! Integration coverage for the shipped scenario library: every `.scn`
//! file under `scenarios/` must parse, and the smoke scenario must run
//! deterministically across thread counts end to end (file → parser →
//! batch runner → JSON). The multi-protocol smoke doubles as the
//! paired-comparison gate: one section per `[[protocol]]` table, all
//! from one churn realization.

use pov_scenario::{run_batch, Scenario};

fn scenario_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn load(name: &str) -> Scenario {
    let path = scenario_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.parse()
        .unwrap_or_else(|e| panic!("parsing {name}: {e}"))
}

#[test]
fn every_shipped_scenario_parses() {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(scenario_dir()).expect("scenarios/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("scn") {
            let text = std::fs::read_to_string(&path).expect("readable");
            let scn: Scenario = text
                .parse()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(scn.num_runs() > 0, "{}", path.display());
            assert!(!scn.protocols.is_empty(), "{}", path.display());
            names.push(scn.name);
        }
    }
    // The library: paper baseline + the regime files (including the
    // composed churn+partition and oscillating+continuous regimes the
    // RunPlan redesign opened, the [phases] lifecycle arc the soak
    // harness mirrors, the maintained-overlay twin of the oscillating
    // regime, and the multiplexed [workload] file) + the CI smoke file.
    names.sort();
    assert_eq!(
        names,
        vec![
            "adversarial-root",
            "adversarial-sketch",
            "cascading-partitions",
            "churn-plus-partition",
            "correlated-failure",
            "flash-crowd",
            "mux-workload",
            "oscillating",
            "overlay-churn",
            "paper-baseline",
            "partition-heal",
            "smoke",
            "soak-lifecycle",
        ]
    );
}

#[test]
fn smoke_scenario_runs_identically_on_any_thread_count() {
    let scn = load("smoke.scn");
    let sequential = run_batch(&scn, 1);
    let parallel = run_batch(&scn, 4);
    assert_eq!(
        sequential.to_json().render(),
        parallel.to_json().render(),
        "parallel batch must be byte-identical to sequential"
    );
    assert_eq!(sequential.runs, scn.num_runs());
    assert_eq!(sequential.declared_fraction, 1.0);
}

#[test]
fn smoke_report_has_one_paired_section_per_protocol() {
    let scn = load("smoke.scn");
    assert_eq!(scn.protocols.len(), 2, "smoke is the paired smoke");
    let report = run_batch(&scn, 2);
    let wf = report.section("WILDFIRE").expect("WILDFIRE section");
    let st = report
        .section("SPANNINGTREE")
        .expect("SPANNINGTREE section");
    // Paired: same cells, same churn draw per cell — `hu` (judged over
    // the same deadline) matches record-for-record.
    assert_eq!(wf.records.len(), st.records.len());
    for (a, b) in wf.records.iter().zip(&st.records) {
        assert_eq!((a.seed, a.rep), (b.seed, b.rep));
        assert_eq!(a.hu, b.hu);
    }
    let json = report.to_json().render();
    assert_eq!(
        json.matches("\"protocol\": ").count(),
        3,
        "one JSON section per protocol plus one paired-difference entry"
    );
    // The paired-difference column: exactly one contender-vs-baseline
    // entry for the two-protocol smoke, in file order.
    assert_eq!(report.paired.len(), 1);
    assert_eq!(report.paired[0].protocol, "SPANNINGTREE");
    assert_eq!(report.paired[0].baseline, "WILDFIRE");
    assert!(json.contains("\"paired\""));
    assert!(json.contains("\"ci95\""));
}

#[test]
fn smoke_report_shape_is_stable() {
    let scn = load("smoke.scn");
    let report = run_batch(&scn, 2);
    let json = report.to_json().render();
    for field in [
        "\"scenario\"",
        "\"protocol\"",
        "\"churn_model\"",
        "\"windows\"",
        "\"declared_fraction\"",
        "\"valid_fraction\"",
        "\"metrics\"",
        "\"deviation\"",
        "\"records\"",
    ] {
        assert!(json.contains(field), "missing {field} in report JSON");
    }
}

/// The PR's acceptance criterion, end to end: one `.scn` document with
/// two `[[protocol]]` tables plus `[churn]` *and* `[partition]`
/// sections produces a single report with per-protocol sections
/// computed from the same churn realization, byte-identical across
/// thread counts.
#[test]
fn two_protocols_under_stacked_regimes_share_one_realization() {
    let scn: Scenario = r#"
[scenario]
name = "acceptance"
[topology]
kind = "random"
n = 120
seed = 5
[query]
aggregate = "count"
[[protocol]]
kind = "wildfire"
[[protocol]]
kind = "spanning-tree"
[churn]
model = "uniform"
fraction = 0.1
[partition]
fraction = 0.25
from = 0.2
heal = 0.8
[run]
seeds = [1, 2]
repetitions = 2
"#
    .parse()
    .expect("valid scenario");
    assert_eq!(scn.regime(), "uniform+partition");
    let t1 = run_batch(&scn, 1);
    let t8 = run_batch(&scn, 8);
    assert_eq!(
        t1.to_json().render(),
        t8.to_json().render(),
        "threads must not perturb the paired report"
    );
    assert_eq!(t1.protocols.len(), 2);
    // Same realization: swapping the protocol order leaves each
    // section's records untouched.
    let mut swapped = scn.clone();
    swapped.protocols.reverse();
    let swapped_report = run_batch(&swapped, 2);
    assert_eq!(
        t1.section("WILDFIRE").unwrap().records,
        swapped_report.section("WILDFIRE").unwrap().records
    );
    assert_eq!(
        t1.section("SPANNINGTREE").unwrap().records,
        swapped_report.section("SPANNINGTREE").unwrap().records
    );
}

/// The PR's acceptance criterion on the shipped scenario: with an
/// identical event budget (and identical seeds/topology), the dynamic
/// sketch-targeting adversary degrades WILDFIRE strictly more than
/// oblivious uniform churn — the declared count and the `HC` envelope
/// both collapse — while the Single-Site deviation stays within FM
/// noise for both regimes (the adversary hollows the guarantee out
/// rather than breaking it; `repro adversary` judges the same attack
/// against the §4.1 interval envelope, where the gap is explicit).
#[test]
fn adversarial_sketch_beats_uniform_at_equal_budget() {
    let scn = load("adversarial_sketch.scn");
    assert_eq!(scn.regime(), "adversary");
    let budget = scn.adversary.expect("[adversary] section").budget;
    // The uniform twin: same file, same seeds, same event budget, but
    // the oblivious §6.2 model instead of the adaptive attacker.
    let mut twin = scn.clone();
    twin.adversary = None;
    twin.churn = pov_scenario::ChurnSpec::Uniform {
        fraction: budget as f64 / scn.n as f64,
        window: (0.0, 1.0),
    };
    let targeted = run_batch(&scn, 2);
    let uniform = run_batch(&twin, 2);
    // hq is spared in both regimes: every run declares.
    assert_eq!(targeted.declared_fraction, 1.0);
    assert_eq!(uniform.declared_fraction, 1.0);
    // Strictly worse answer at equal budget — by a wide margin, not a
    // noise fluke: the adaptive adversary strangles the convergecast.
    let t_value = targeted.metric("value").unwrap().mean;
    let u_value = uniform.metric("value").unwrap().mean;
    assert!(
        t_value < u_value * 0.5,
        "targeted value {t_value:.0} should collapse far below uniform {u_value:.0}"
    );
    let t_hc = targeted.metric("hc").unwrap().mean;
    let u_hc = uniform.metric("hc").unwrap().mean;
    assert!(
        t_hc < u_hc,
        "targeted |HC| {t_hc:.0} should fall below uniform {u_hc:.0}"
    );
    // Both regimes leave everyone in HU (no joins, kills keep HU fat).
    assert_eq!(targeted.metric("hu").unwrap().mean, scn.n as f64);
    // Theorem 5.3's robustness: the *SSV* deviation stays within FM
    // noise even against the adaptive attacker.
    assert!(targeted.metric("deviation").unwrap().mean < 2.0);
    assert!(uniform.metric("deviation").unwrap().mean < 2.0);
    // And the adversarial batch is byte-identical across thread counts.
    assert_eq!(
        run_batch(&scn, 1).to_json().render(),
        run_batch(&scn, 8).to_json().render()
    );
}

/// The PR's acceptance criterion on the shipped maintained-overlay
/// scenario: `overlay_churn.scn` runs byte-identically across thread
/// counts (the overlay seed is a pure function of the cell seed), and
/// against its overlay-free twin at equal oscillating churn the
/// maintained overlay pays more messages (the denser evolving overlay)
/// without giving up validity.
#[test]
fn overlay_churn_scenario_is_deterministic_and_pays_for_maintenance() {
    let mut scn = load("overlay_churn.scn");
    assert!(scn.overlay.is_some(), "[overlay] section parsed");
    // Trim for debug-mode test time; keep the 3-window registration.
    scn.n = 150;
    scn.seeds = vec![1, 2];
    scn.repetitions = 1;
    let maintained = run_batch(&scn, 2);
    let mut twin = scn.clone();
    twin.overlay = None;
    let frozen = run_batch(&twin, 2);
    // Equal churn realization: the overlay seed is drawn after the
    // churn seed, so HU matches record-for-record across the twins.
    let m_rec = maintained.records();
    let f_rec = frozen.records();
    assert_eq!(m_rec.len(), f_rec.len());
    for (m, f) in m_rec.iter().zip(f_rec.iter()) {
        assert_eq!((m.seed, m.rep, m.window), (f.seed, f.rep, f.window));
        assert_eq!(m.hu, f.hu, "twins share the churn realization");
    }
    // The maintenance plane changes routing: shuffle promotions raise
    // overlay degrees, so the flood costs more messages...
    let m_msgs = maintained.metric("messages").unwrap().mean;
    let f_msgs = frozen.metric("messages").unwrap().mean;
    assert!(
        m_msgs > f_msgs,
        "maintained {m_msgs:.0} msgs should exceed frozen {f_msgs:.0}"
    );
    // ...while both stay inside the §4.2 Single-Site envelope.
    assert!(maintained.metric("deviation").unwrap().mean < 2.0);
    assert!(frozen.metric("deviation").unwrap().mean < 2.0);
    // And the maintained batch is byte-identical across thread counts.
    assert_eq!(
        run_batch(&scn, 1).to_json().render(),
        run_batch(&scn, 8).to_json().render()
    );
}

#[test]
fn oscillating_scenario_reports_per_window_sections() {
    let mut scn = load("oscillating.scn");
    // Trim for debug-mode test time; keep the 3-window registration.
    scn.n = 150;
    scn.seeds = vec![1];
    scn.repetitions = 1;
    let report = run_batch(&scn, 2);
    assert_eq!(report.windows, 3);
    assert_eq!(report.records().len(), 3, "one record per window");
    assert_eq!(report.churn_model, "oscillating");
    // Oscillating hosts rejoin: even late windows still see most of the
    // population at some instant (unlike depart-forever regimes).
    let last = report.records().last().unwrap();
    assert!(
        last.hu > scn.n / 2,
        "rejoining hosts keep HU fat, got {}",
        last.hu
    );
}
