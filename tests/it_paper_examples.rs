//! The paper's worked examples and theorem constructions, reproduced
//! end-to-end across crates.

use pov_core::pov_oracle::{host_sets, Verdict};
use pov_core::pov_protocols::allreport::ReportRouting;
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_core::pov_sim::{ChurnPlan, Time};
use pov_core::pov_topology::generators::special;
use pov_core::pov_topology::{analysis, HostId};
use pov_integration_tests::{example_1_1_graph, example_5_1_graph, example_5_1_values};

fn cfg(aggregate: Aggregate, d_hat: u32, churn: ChurnPlan) -> RunPlan {
    RunPlan::query(aggregate)
        .d_hat(d_hat)
        .repetitions(16)
        .churn(churn)
        .seed(5)
}

/// Example 1.1: counting 16 sensors. Failure-free, SPANNINGTREE returns
/// exactly 16; a single well-placed failure after broadcast silently
/// loses a subtree.
#[test]
fn example_1_1_spanning_tree_count() {
    let g = example_1_1_graph();
    let values = vec![1u64; 16];

    let out = runner::run(
        ProtocolKind::SpanningTree,
        &g,
        &values,
        &cfg(Aggregate::Count, 5, ChurnPlan::none()),
    );
    assert_eq!(out.value, Some(16.0), "failure-free count is 16");

    // Fail an interior host (the grid's (1,1) = host 5, a depth-1 hub)
    // right after it forwarded the query but before its children report.
    let churn = ChurnPlan::none().with_failure(Time(2), HostId(5));
    let out = runner::run(
        ProtocolKind::SpanningTree,
        &g,
        &values,
        &cfg(Aggregate::Count, 5, churn),
    );
    let v = out.value.expect("declared");
    assert!(
        v < 16.0,
        "a single failure must lose hosts ({v} reported) — the Example 1.1 anomaly"
    );
}

/// Example 1.1's punchline, quantified by the oracle: the lost hosts
/// were alive and reachable the whole time, so the result is invalid.
#[test]
fn example_1_1_oracle_flags_invalidity() {
    let g = example_1_1_graph();
    let values = vec![1u64; 16];
    let churn = ChurnPlan::none().with_failure(Time(2), HostId(5));
    let out = runner::run(
        ProtocolKind::SpanningTree,
        &g,
        &values,
        &cfg(Aggregate::Count, 5, churn),
    );
    let sets = host_sets(&g, &out.trace, HostId(0), Time::ZERO, Time(10));
    // The 4x4 Moore grid stays connected without host 5: HC = 15.
    assert_eq!(sets.hc_len(), 15);
    assert_eq!(sets.hu_len(), 16);
    let verdict = Verdict::judge(Aggregate::Count, &sets, &values, out.value.unwrap());
    assert!(
        !verdict.within_bounds,
        "the oracle must reject {} ∉ [15, 16]",
        out.value.unwrap()
    );
}

/// Example 5.1 (Fig 5): WILDFIRE max on the diamond declares 25 at
/// `t = 2·D̂·δ = 6` with exactly the walk-through's 10 messages.
#[test]
fn example_5_1_full_walkthrough() {
    let g = example_5_1_graph();
    let values = example_5_1_values();
    let out = runner::run(
        ProtocolKind::Wildfire(WildfireOpts::default()),
        &g,
        &values,
        &RunPlan::query(Aggregate::Max).d_hat(3),
    );
    assert_eq!(out.value, Some(25.0));
    assert_eq!(out.declared_at, Some(Time(6)));
    assert_eq!(out.metrics.messages_sent, 10);
}

/// Example 5.1's failure discussion: "if either x or y had failed, w
/// would still obtain z's value. If both x and y had failed, w would
/// output v = 5, but this is acceptable as HC = {w}."
#[test]
fn example_5_1_failure_cases_with_oracle() {
    let g = example_5_1_graph();
    let values = example_5_1_values();

    // One path fails.
    let churn = ChurnPlan::none().with_failure(Time(1), HostId(1));
    let out = runner::run(
        ProtocolKind::Wildfire(WildfireOpts::default()),
        &g,
        &values,
        &cfg(Aggregate::Max, 3, churn),
    );
    assert_eq!(out.value, Some(25.0));

    // Both paths fail.
    let churn = ChurnPlan::none()
        .with_failure(Time(1), HostId(1))
        .with_failure(Time(1), HostId(2));
    let out = runner::run(
        ProtocolKind::Wildfire(WildfireOpts::default()),
        &g,
        &values,
        &cfg(Aggregate::Max, 3, churn.clone()),
    );
    assert_eq!(out.value, Some(5.0));
    let sets = host_sets(&g, &out.trace, HostId(0), Time::ZERO, Time(6));
    assert_eq!(sets.hc_hosts(), vec![HostId(0)], "HC = {{w}}");
    let verdict = Verdict::judge(Aggregate::Max, &sets, &values, 5.0);
    assert!(verdict.is_valid(), "5 is a valid max when HC = {{w}}");
}

/// Theorem 4.1's construction: a chain where hosts join just before any
/// chosen snapshot instant can never have its values reflected in time —
/// we verify the *mechanism* (late joiners stay invisible to the query)
/// rather than the impossibility itself.
#[test]
fn theorem_4_1_chain_join_mechanism() {
    let k = 6;
    let g = special::chain(k + 1);
    let values = vec![1u64; k + 1];
    // Hosts 4..6 start dead and join at t = 5 — the flood front reaches
    // host 4's position at t = 4, finds it absent, and dies there.
    let churn = ChurnPlan::none()
        .with_join(Time(5), HostId(4))
        .with_join(Time(5), HostId(5))
        .with_join(Time(5), HostId(6));
    let out = runner::run(
        ProtocolKind::AllReport(ReportRouting::Direct),
        &g,
        &values,
        &cfg(Aggregate::Count, k as u32, churn),
    );
    let v = out.value.expect("declared");
    assert!(
        v < (k + 1) as f64,
        "late joiners cannot contribute ({v} counted)"
    );
    // They are nevertheless in HU — exactly the gap between Snapshot and
    // Single-Site Validity.
    let sets = host_sets(&g, &out.trace, HostId(0), Time::ZERO, Time(2 * k as u64));
    assert_eq!(sets.hu_len(), k + 1);
}

/// Theorem 4.2's construction: a cut vertex fails before the query
/// passes, stranding an alive host. Single-Site Validity (unlike
/// Interval Validity) tolerates this: the stranded host leaves HC.
#[test]
fn theorem_4_2_cut_vertex() {
    let (g, hq, cut, stranded) = special::one_connected(4);
    let values = vec![1u64; g.num_hosts()];
    let churn = ChurnPlan::none().with_failure(Time(1), cut);
    let out = runner::run(
        ProtocolKind::Wildfire(WildfireOpts::default()),
        &g,
        &values,
        &cfg(Aggregate::Count, 4, churn),
    );
    let sets = host_sets(&g, &out.trace, hq, Time::ZERO, Time(8));
    assert!(!sets.hc[stranded.index()], "stranded host leaves HC");
    assert!(sets.hu[stranded.index()], "but remains in HU");
    let verdict = Verdict::judge(Aggregate::Count, &sets, &values, out.value.unwrap());
    assert!(
        verdict.is_approx_valid(2.0),
        "WILDFIRE stays (approximately) valid: {:?}",
        verdict
    );
}

/// Theorem 4.4: on the cycle-with-spur instance, SPANNINGTREE can return
/// `v = q(H)` with `|H| ≤ |HC|/2` after a single failure — while
/// WILDFIRE, on the same run, does not lose the far arc.
#[test]
fn theorem_4_4_spanning_tree_arbitrarily_bad() {
    let n = 8;
    let (g, hq, victim) = special::cycle_with_spur(n);
    let total = g.num_hosts(); // 2n + 3
    let values = vec![1u64; total];
    let d = analysis::diameter_exact(&g);
    let churn = ChurnPlan::none().with_failure(Time(3), victim);

    let st = runner::run(
        ProtocolKind::SpanningTree,
        &g,
        &values,
        &cfg(Aggregate::Count, d + 2, churn.clone()),
    );
    let wf = runner::run(
        ProtocolKind::Wildfire(WildfireOpts::default()),
        &g,
        &values,
        &cfg(Aggregate::Count, d + 2, churn.clone()),
    );

    let sets = host_sets(&g, &st.trace, hq, Time::ZERO, Time(2 * (d as u64 + 2)));
    let hc = sets.hc_len() as f64;
    assert_eq!(hc as usize, total - 1, "only the victim leaves HC");

    let st_v = st.value.expect("declared");
    assert!(
        st_v <= hc / 2.0 + 1.0,
        "Theorem 4.4: ST loses ~half of HC (returned {st_v} of {hc})"
    );
    let wf_v = wf.value.expect("declared");
    assert!(
        wf_v > st_v,
        "WILDFIRE ({wf_v}) must beat ST ({st_v}) on the Thm 4.4 instance"
    );
}

/// §4.1's ALLREPORT validity argument, on a topology where reports
/// require multiple hops (sensor-style reverse-tree routing).
#[test]
fn allreport_reverse_tree_on_grid() {
    let g = example_1_1_graph();
    let values = vec![1u64; 16];
    let out = runner::run(
        ProtocolKind::AllReport(ReportRouting::ReverseTree),
        &g,
        &values,
        &cfg(Aggregate::Count, 5, ChurnPlan::none()),
    );
    assert_eq!(out.value, Some(16.0));
    // Direct-delivery's hotspot: the root processes every report.
    let processed_at_root = out.metrics.processed_per_host[0];
    assert!(
        processed_at_root >= 15,
        "hq must process all 15 reports, saw {processed_at_root}"
    );
}
