//! The multiplexed engine's equivalence witness, end to end: every
//! query executed concurrently with hundreds of co-residents must
//! declare exactly what it declares when run *alone* over the same
//! graph, values and churn realization — `(value, declared_at)` and
//! ORACLE verdict both. This is what makes `repro mux`'s speedup a
//! like-for-like comparison rather than a different computation that
//! happens to be faster.

use pov_core::mux::{judged_mux, solo_twin, WindowSpec, WorkloadSpec};
use pov_core::pov_protocols::MuxPlan;
use pov_core::pov_sim::{ChurnPlan, Time};
use pov_core::pov_topology::generators::TopologyKind;
use pov_core::pov_topology::{analysis, Graph, HostId};
use pov_core::workload::paper_values;

/// A random-overlay environment with uniform churn across the whole
/// workload horizon — the same construction `repro mux` benches, at
/// test scale.
fn environment(n: usize, seed: u64) -> (Graph, Vec<u64>, u32) {
    let graph = TopologyKind::Random.build(n, seed);
    let n = graph.num_hosts();
    let values = paper_values(n, seed ^ 0x5eed_0001);
    let d_hat = analysis::diameter_estimate(&graph, 4, seed | 1) + 2;
    (graph, values, d_hat)
}

fn churned_plan(n: usize, failures: usize, horizon: u64, seed: u64) -> MuxPlan {
    MuxPlan {
        churn: ChurnPlan::uniform_failures(
            n,
            failures,
            Time(1),
            Time(horizon),
            HostId(0),
            seed ^ 0xc4,
        ),
        partition: None,
        seed: seed ^ 0x51b,
    }
}

/// Solo-vs-multiplexed answer equivalence per query: a mixed workload
/// under mid-run churn, every non-joined query re-run alone against
/// the identical realization.
#[test]
fn every_query_matches_its_solo_twin_under_churn() {
    let (graph, values, d_hat) = environment(250, 42);
    let n = graph.num_hosts();
    let spec = WorkloadSpec {
        queries: 30,
        span: 2 * d_hat as u64,
        d_hat,
        window: None,
        seed: 42,
    };
    let queries = spec.generate(n);
    let horizon = queries.iter().map(|q| q.deadline()).max().unwrap() + 2;
    let plan = churned_plan(n, n / 10, horizon, 42);
    let (judged, _) = judged_mux(&graph, &values, &queries, &plan);
    assert_eq!(judged.len(), queries.len());

    // The churn window spans the whole horizon and arrivals are spread
    // over two deadlines, so queries genuinely arrive mid-churn: hosts
    // have already failed before they launch, and more fail while they
    // run. Make sure the regime is actually exercised.
    let first_kill = plan.churn.failures.iter().map(|&(t, _)| t).min().unwrap();
    let mid_churn = judged
        .iter()
        .filter(|j| Time(j.query.arrival) > first_kill)
        .count();
    assert!(
        mid_churn >= judged.len() / 2,
        "only {mid_churn} of {} queries arrived after churn began",
        judged.len()
    );

    let mut checked = 0;
    for j in judged.iter().filter(|j| !j.joined) {
        let twin = solo_twin(&graph, &values, &j.query, &plan);
        assert_eq!(
            (j.value, j.declared_at),
            (twin.value, twin.declared_at),
            "query {:?} ({:?} root {:?}) diverged from its solo twin",
            j.query.id,
            j.query.aggregate,
            j.query.root
        );
        assert_eq!(
            j.is_valid(),
            twin.is_valid(),
            "query {:?}: multiplexing changed the ORACLE verdict",
            j.query.id
        );
        assert_eq!((j.hc_size, j.hu_size), (twin.hc_size, twin.hu_size));
        checked += 1;
    }
    assert!(checked >= 25, "only {checked} twins checked");
}

/// The same witness through the sliding-window expansion: instances of
/// a windowed base query arrive mid-churn by construction (successive
/// arrivals are `slide` ticks apart), and each must carry its solo
/// twin's verdict over its own `[end − W, end]` slice.
#[test]
fn windowed_instances_match_their_solo_twins() {
    let (graph, values, d_hat) = environment(150, 9);
    let n = graph.num_hosts();
    let deadline = 2 * d_hat as u64;
    let spec = WorkloadSpec {
        queries: 8,
        span: deadline,
        d_hat,
        window: Some(WindowSpec {
            window: (deadline * 4) / 5,
            slide: deadline / 3,
            instances: 3,
        }),
        seed: 9,
    };
    let queries = spec.generate(n);
    assert_eq!(queries.len(), 24, "8 base queries × 3 instances");
    let horizon = queries.iter().map(|q| q.deadline()).max().unwrap() + 2;
    let plan = churned_plan(n, n / 8, horizon, 9);
    let (judged, _) = judged_mux(&graph, &values, &queries, &plan);
    for j in judged.iter().filter(|j| !j.joined) {
        let twin = solo_twin(&graph, &values, &j.query, &plan);
        assert_eq!(
            (j.value, j.declared_at),
            (twin.value, twin.declared_at),
            "windowed instance {:?} diverged from its solo twin",
            j.query.id
        );
        assert_eq!(j.is_valid(), twin.is_valid(), "instance {:?}", j.query.id);
    }
    // Later instances of a live root join the earlier instance's wave
    // through the partial cache — the aliasing path stays exercised.
    assert!(
        judged.iter().any(|j| j.joined),
        "no instance joined a live wave; the cache path went dark"
    );
}

/// The multiplexed run itself is a pure function of its inputs: a
/// second execution reproduces every declaration bit for bit.
#[test]
fn multiplexed_run_is_deterministic() {
    let (graph, values, d_hat) = environment(200, 7);
    let n = graph.num_hosts();
    let spec = WorkloadSpec {
        queries: 20,
        span: 2 * d_hat as u64,
        d_hat,
        window: None,
        seed: 7,
    };
    let queries = spec.generate(n);
    let horizon = queries.iter().map(|q| q.deadline()).max().unwrap() + 2;
    let plan = churned_plan(n, n / 10, horizon, 7);
    let (a, out_a) = judged_mux(&graph, &values, &queries, &plan);
    let (b, out_b) = judged_mux(&graph, &values, &queries, &plan);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.value, x.declared_at), (y.value, y.declared_at));
        assert_eq!(x.payload_msgs, y.payload_msgs);
    }
    assert_eq!(out_a.raw_messages, out_b.raw_messages);
    assert_eq!(out_a.results, out_b.results);
}
