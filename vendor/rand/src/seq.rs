//! Sequence helpers: [`SliceRandom`].

use crate::{bounded_u64, RngCore};

/// Random operations on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(bounded_u64(rng, self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        assert!([5u32].choose(&mut rng).is_some());
    }
}
