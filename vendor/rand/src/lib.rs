//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the slice of the rand 0.8 API that the
//! `pov_*` crates use: [`rngs::SmallRng`] seeded with
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods `gen`,
//! `gen_range` and `gen_bool`, and the [`seq::SliceRandom`] helpers
//! `shuffle` and `choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically far better than the reproduction needs. It is
//! **not** cryptographically secure, exactly like the real `SmallRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Core source of randomness: a stream of `u64`/`u32` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a `u64` seed (via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that `Rng::gen` can produce ("Standard distribution").
pub trait StandardSample {
    /// Draw one value uniformly from the type's natural domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply bounded sampling (Lemire); bias is < 2^-64 per draw.
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is in range.
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
