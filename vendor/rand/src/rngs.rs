//! Concrete generators: [`SmallRng`].

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++), mirroring
/// `rand::rngs::SmallRng`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 — the recommended seeder for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut st);
        }
        // All-zero state is the one forbidden state; SplitMix64 cannot
        // produce it from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
