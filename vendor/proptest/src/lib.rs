//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment cannot reach crates.io, so the five property-test
//! suites in this workspace run on this miniature re-implementation. It
//! keeps the API the suites use — the [`proptest!`] macro (including
//! `#![proptest_config(..)]`), [`Strategy`] with `prop_map`/`prop_flat_map`,
//! integer-range strategies, tuples, [`Just`], `prop::collection::vec` and
//! `prop::array::uniform3`, and the `prop_assert*` macros — and runs each
//! test over deterministic pseudo-random cases (seeded from the test name,
//! so failures reproduce). It does **not** shrink counterexamples; swap the
//! real proptest back in for minimal failing inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prop;

/// Everything the test suites import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest default is 256; keep the suite fast while still
        // exploring a meaningful slice of the space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case failed; mirrors `proptest::test_runner::TestCaseError`.
/// The stub only ever constructs it from an explicit `return Err(..)` in a
/// test body (none of the suites do today).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// Deterministic per-test RNG. Public only for use by the [`proptest!`]
/// macro expansion.
#[doc(hidden)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeded from the test name, so every run of a given test sees the
    /// same case sequence.
    #[doc(hidden)]
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name; fixed offset basis keeps runs reproducible.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating values of `Self::Value`; mirrors
/// `proptest::strategy::Strategy` (sampling only — no shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Run each property as named `#[test]` functions over random cases.
///
/// Supports the subset of the real macro's grammar the suites use:
/// an optional leading `#![proptest_config(expr)]`, then test functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    // Mirror real proptest: the body runs in a
                    // `Result`-returning scope so `return Ok(())` works as
                    // an early case-accept.
                    #[allow(clippy::redundant_closure_call)]
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!("proptest case {case} rejected: {e:?}");
                    }
                }
            }
        )*
    };
}

/// `assert!` under a proptest-flavoured name (no shrinking, so a plain
/// panic is the whole failure report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pair {
        n: u32,
        xs: Vec<u64>,
    }

    fn pair(max_n: u32) -> impl Strategy<Value = Pair> {
        (2..max_n)
            .prop_flat_map(|n| (Just(n), prop::collection::vec(0u64..100, n as usize)))
            .prop_map(|(n, xs)| Pair { n, xs })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 1usize..12, b in 0u64..200, c in 3u32..=7) {
            prop_assert!((1..12).contains(&a));
            prop_assert!(b < 200);
            prop_assert!((3..=7).contains(&c));
        }

        #[test]
        fn flat_map_links_sizes(p in pair(20)) {
            prop_assert_eq!(p.n as usize, p.xs.len());
            prop_assert!(p.xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn collections_and_arrays(
            v in prop::collection::vec((0u32..5, 0u32..5), 1..10),
            a in prop::array::uniform3(0u64..1_000),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(a.iter().all(|&x| x < 1_000));
            prop_assume!(v.len() > 1);
            prop_assert_ne!(v.len(), 1);
        }
    }
}
