//! The `prop::` namespace: collection and array strategies.

use crate::{Strategy, TestRng};
use rand::Rng;

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Lengths that [`vec()`] accepts: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniformly between `lo` (inclusive) and `hi` (exclusive).
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Range(*r.start(), r.end() + 1)
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Range(lo, hi) => {
                    assert!(lo < hi, "cannot sample empty size range");
                    rng.gen_range(lo..hi)
                }
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use super::*;

    macro_rules! uniform_array {
        ($(#[$doc:meta] $fname:ident => $n:literal),+ $(,)?) => {$(
            #[$doc]
            pub fn $fname<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )+};
    }

    uniform_array! {
        /// Strategy for `[T; 2]` with every slot drawn from `element`.
        uniform2 => 2,
        /// Strategy for `[T; 3]` with every slot drawn from `element`.
        uniform3 => 3,
        /// Strategy for `[T; 4]` with every slot drawn from `element`.
        uniform4 => 4,
        /// Strategy for `[T; 5]` with every slot drawn from `element`.
        uniform5 => 5,
    }

    /// Output of the `uniformN` constructors.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.element.sample(rng))
        }
    }
}
