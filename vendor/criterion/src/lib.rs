//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment cannot reach crates.io, so the 12 figure/ablation
//! benches in `pov_bench` link against this minimal harness instead. It
//! keeps criterion's surface API (`criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`]) and measures wall-clock time over a handful of
//! iterations — enough for `cargo bench` smoke runs and CI compilation;
//! swap the real criterion back in for statistically rigorous numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations each benchmark runs (after one warm-up).
const TIMED_ITERS: u32 = 3;

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Run a single free-standing benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), |b| f(b, input));
        self
    }
}

/// A named collection of benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed,
    /// small number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the throughput of one iteration (printed, not analysed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run one benchmark inside the group with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark (a name plus an optional parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, e.g. `count_and_sum/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units processed per iteration; mirrors `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `f`: one warm-up call, then a few timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += TIMED_ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.total / b.iters
    } else {
        Duration::ZERO
    };
    println!("{id:<60} time: {per_iter:>12.3?} ({} iters)", b.iters);
}

/// Bundle benchmark functions under one group name; mirrors criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; the stub harness ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_counts_iters() {
        benches();
    }
}
