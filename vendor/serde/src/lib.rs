//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! This workspace derives `Serialize`/`Deserialize` on its wire and report
//! types as forward-looking markers but never serializes anything (there is
//! no `serde_json`/`bincode` in the tree), and the build environment cannot
//! reach crates.io. So this crate provides the two trait names and no-op
//! derive macros under the same paths the real crate exports; replacing it
//! with real serde later is a Cargo.toml-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
mod tests {
    #[test]
    fn derives_compile_on_all_shapes() {
        #![allow(dead_code)]
        #[derive(super::Serialize, super::Deserialize)]
        struct Unit;
        #[derive(super::Serialize, super::Deserialize)]
        struct Tuple(u32, #[serde(skip)] u64);
        #[derive(super::Serialize, super::Deserialize)]
        #[serde(rename_all = "snake_case")]
        enum Kind {
            A,
            B { x: f64 },
        }
        let _ = (Unit, Tuple(1, 2), Kind::A, Kind::B { x: 0.0 });
    }
}
