//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker —
//! nothing actually serializes (there is no `serde_json` in the tree) — so
//! these derives deliberately expand to nothing. Swapping the real serde
//! back in later requires no source changes in the `pov_*` crates.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
